#include "obs/trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/json.h"

namespace twig::obs {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                              sizeof buf - 1));
}

}  // namespace

void Trace::Clear() {
  query.clear();
  algorithm.clear();
  semantics.clear();
  note.clear();
  data_node_count = 0;
  missing_count = 0;
  pieces.clear();
  terms.clear();
  estimate = 0;
}

std::string Trace::ToText() const {
  std::string out;
  AppendF(out, "query: %s\n", query.c_str());
  AppendF(out, "algorithm: %s (%s semantics), N=%.0f, missing_count=%g\n",
          algorithm.c_str(), semantics.c_str(), data_node_count,
          missing_count);
  if (!note.empty()) AppendF(out, "note: %s\n", note.c_str());
  AppendF(out, "decomposition: %zu piece(s)\n", pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) {
    const PieceTrace& p = pieces[i];
    AppendF(out, "  piece %zu: %s  [%s, %zu subpath(s)]  count=%g\n", i,
            p.label.c_str(),
            p.missing ? "missing"
                      : (p.num_subpaths >= 2 ? "twiglet" : "subpath"),
            p.num_subpaths, p.count);
    for (const SubpathTrace& sp : p.subpaths) {
      if (sp.hit && sp.aggregated > 1) {
        AppendF(out,
                "    subpath %-32s hit   Cp=%g Co=%g count=%g "
                "(sum of %zu label paths)\n",
                sp.subpath.c_str(), sp.presence, sp.occurrence, sp.count,
                sp.aggregated);
      } else if (sp.hit) {
        AppendF(out, "    subpath %-32s hit   Cp=%g Co=%g count=%g\n",
                sp.subpath.c_str(), sp.presence, sp.occurrence, sp.count);
      } else {
        AppendF(out, "    subpath %-32s MISS  -> missing_count=%g\n",
                sp.subpath.c_str(), sp.count);
      }
    }
    for (const IntersectionTrace& ix : p.intersections) {
      AppendF(out, "    intersect k=%zu {", ix.inputs.size());
      for (size_t j = 0; j < ix.inputs.size(); ++j) {
        AppendF(out, "%s%s(%g)", j ? ", " : "", ix.inputs[j].c_str(),
                j < ix.input_sizes.size() ? ix.input_sizes[j] : 0.0);
      }
      AppendF(out, "} signatures=%zu match=%zu resemblance=%g ",
              ix.signatures, ix.matching_components, ix.resemblance);
      if (ix.fallback) {
        out += "-> pure-MO fallback\n";
      } else {
        AppendF(out, "estimate=%g\n", ix.estimate);
      }
    }
  }
  AppendF(out, "combination: %zu term(s)\n", terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    const CombineTermTrace& t = terms[i];
    if (t.skipped) {
      AppendF(out, "  term %zu: piece %zu fully covered, skipped\n", i,
              t.piece);
      continue;
    }
    AppendF(out, "  term %zu: piece %zu  Pr=%g", i, t.piece, t.piece_prob);
    if (!t.overlap.empty()) {
      AppendF(out, " / overlap{%s} Pr=%g", t.overlap.c_str(),
              t.overlap_prob);
    }
    AppendF(out, "  -> %g\n", t.running_estimate);
  }
  AppendF(out, "estimate: %g\n", estimate);
  return out;
}

std::string Trace::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Uint(kTraceSchemaVersion);
  w.Key("query");
  w.String(query);
  w.Key("algorithm");
  w.String(algorithm);
  w.Key("semantics");
  w.String(semantics);
  w.Key("note");
  w.String(note);
  w.Key("data_node_count");
  w.Double(data_node_count);
  w.Key("missing_count");
  w.Double(missing_count);
  w.Key("estimate");
  w.Double(estimate);
  w.Key("pieces");
  w.BeginArray();
  for (const PieceTrace& p : pieces) {
    w.BeginObject();
    w.Key("label");
    w.String(p.label);
    w.Key("num_subpaths");
    w.Uint(p.num_subpaths);
    w.Key("missing");
    w.Bool(p.missing);
    w.Key("count");
    w.Double(p.count);
    w.Key("subpaths");
    w.BeginArray();
    for (const SubpathTrace& sp : p.subpaths) {
      w.BeginObject();
      w.Key("subpath");
      w.String(sp.subpath);
      w.Key("hit");
      w.Bool(sp.hit);
      w.Key("presence");
      w.Double(sp.presence);
      w.Key("occurrence");
      w.Double(sp.occurrence);
      w.Key("aggregated");
      w.Uint(sp.aggregated);
      w.Key("count");
      w.Double(sp.count);
      w.EndObject();
    }
    w.EndArray();
    w.Key("intersections");
    w.BeginArray();
    for (const IntersectionTrace& ix : p.intersections) {
      w.BeginObject();
      w.Key("inputs");
      w.BeginArray();
      for (const std::string& s : ix.inputs) w.String(s);
      w.EndArray();
      w.Key("input_sizes");
      w.BeginArray();
      for (double d : ix.input_sizes) w.Double(d);
      w.EndArray();
      w.Key("signatures");
      w.Uint(ix.signatures);
      w.Key("matching_components");
      w.Uint(ix.matching_components);
      w.Key("resemblance");
      w.Double(ix.resemblance);
      w.Key("estimate");
      w.Double(ix.estimate);
      w.Key("fallback");
      w.Bool(ix.fallback);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("terms");
  w.BeginArray();
  for (const CombineTermTrace& t : terms) {
    w.BeginObject();
    w.Key("piece");
    w.Uint(t.piece);
    w.Key("piece_prob");
    w.Double(t.piece_prob);
    w.Key("overlap");
    w.String(t.overlap);
    w.Key("overlap_prob");
    w.Double(t.overlap_prob);
    w.Key("skipped");
    w.Bool(t.skipped);
    w.Key("running_estimate");
    w.Double(t.running_estimate);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

}  // namespace twig::obs
