// Process-wide estimator metrics: lock-free per-thread counters and
// latency histograms, aggregated on demand.
//
// The write path is a single-writer design: every thread owns a slot
// of plain-stored atomics (store(load(relaxed)+d) compiles to an
// ordinary increment — no interlocked RMW), so instrumented hot paths
// pay a thread-local load plus a handful of adds per query. Slots are
// recycled through a free list when threads exit, so short-lived batch
// pool workers do not grow the registry without bound. Aggregation
// (Snapshot) walks all slots under the registration mutex; counters
// are cumulative for the process, so callers wanting an interval take
// two snapshots and Delta them — there is no destructive Reset racing
// the writers.
//
// Latency is tracked per estimation algorithm in log2-bucketed
// nanosecond histograms (bucket i covers [2^(i-1), 2^i) ns, bucket 0
// is [0, 1] ns), which is enough resolution for p50/p99 trends while
// keeping a slot under 2 KB.

#ifndef TWIG_OBS_METRICS_H_
#define TWIG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace twig::obs {

/// The global counters. Lookup counters count *subpath* resolutions
/// (one walk of a root-anchored atom sequence), not individual child
/// steps, to keep instrumentation off the innermost loops.
enum class Counter : size_t {
  kEstimates,             // TwigEstimator::Estimate calls
  kTracesRecorded,        // estimates that filled an explain trace
  kCstSubpathLookups,     // combiner subpath resolutions against the CST
  kCstSubpathHits,        //   ... that found a CST node
  kCstSubpathMisses,      //   ... that fell back to missing_count
  kSethashIntersections,  // k-way set-hash intersection estimates
  kTwigletMoFallbacks,    // twiglets degraded to pure-MO conditioning
  kBatches,               // EstimateBatch calls
  // Serving layer (src/serve/): every admitted, answered, refused, and
  // expired request, plus snapshot lifecycle events.
  kServeEnqueued,         // requests admitted to the service queue
  kServeServed,           // requests answered with an estimate
  kServeRejected,         // refused: queue full, shutdown, no snapshot
  kServeDeadlineMisses,   // expired before a worker could run them
  kSnapshotPublishes,     // CST snapshots published to a catalog
  // Result cache (serve/result_cache.h): admission-time lookups.
  kServeCacheHits,        // estimates answered from the result cache
  kServeCacheMisses,      // lookups that fell through to the estimator
  kServeCacheEvictions,   // entries displaced by the LRU bound
  // Accuracy sampler (serve/service.cc): requests re-executed against
  // the exact matcher to measure live estimation error.
  kServeAccuracySamples,  // sampled requests with a ground-truth count
  kServeAccuracyFailures, //   ... where the exact matcher errored
  // Fault model (util/failpoint.h + serve/health.h): injected faults,
  // client retry grants, brown-out load shedding, and rebuilds that
  // failed leaving the previous snapshot published.
  kFaultInjected,         // failpoint actions that fired on a serve seam
  kRetries,               // retry attempts granted by a RetryPolicy
  kBrownoutSheds,         // uncached requests shed while browning out
  kRebuildFailures,       // snapshot rebuilds that returned an error
  // Disk-backed CST storage (src/storage/): buffer-pool traffic over
  // paged TWCST03 stores.
  kStoragePageReads,      // page loads that went to the PageSource
  kStoragePagePins,       // pins granted (hits and loads alike)
  kStoragePageEvictions,  // clean frames recycled by the clock sweep
  kStorageChecksumFailures,  // pages rejected by per-page validation
  // Multi-tenant admission (serve/fair_queue.h) and the epoll front
  // end's accept loop (serve/tcp.cc).
  kServeTenantAdmitted,   // requests admitted past the tenant gate
  kServeTenantThrottled,  // refused: token bucket or occupancy cap
  kServeAcceptRetries,    // transient accept() failures ridden out
  kCount,
};

inline constexpr size_t kCounterCount = static_cast<size_t>(Counter::kCount);

/// Stable snake_case name used as the JSON key ("cst_subpath_hits").
const char* CounterName(Counter counter);

/// A plain aggregated counter vector (used for per-batch deltas).
using CounterArray = std::array<uint64_t, kCounterCount>;

/// JSON object {"name": value, ...} over all counters.
std::string CountersToJson(const CounterArray& counters);

/// One latency series per core::Algorithm, in kAllAlgorithms order
/// (Leaf, Greedy, MO, MOSH, PMOSH, MSH), plus serving-layer series for
/// time spent waiting in the request queue and for answering a request
/// from the result cache. obs cannot depend on core, so the
/// correspondence is by index; estimator.cc asserts the algorithm
/// prefix.
inline constexpr size_t kLatencySeries = 8;
extern const std::array<const char*, kLatencySeries> kLatencySeriesNames;

/// Index of the serving layer's enqueue-wait series ("serve_wait").
inline constexpr size_t kServeWaitSeries = 6;

/// Index of the result cache's hit-path series ("serve_cache_hit"):
/// admission-to-answer time for requests served from the cache.
inline constexpr size_t kServeCacheHitSeries = 7;

inline constexpr size_t kLatencyBuckets = 32;

/// Version of the metrics JSON export schema (the "schema_version"
/// field of MetricsSnapshot::ToJson). Bump on any key change so
/// downstream scrapers can detect format drift.
inline constexpr uint64_t kMetricsSchemaVersion = 5;

/// Aggregated view of one latency series.
struct HistogramSnapshot {
  std::array<uint64_t, kLatencyBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum_nanos = 0;

  /// Adds one observation (same log2 bucketing as the registry). Lets
  /// callers build standalone histograms (bench harnesses, tests).
  void Record(uint64_t nanos);
  /// Component-wise this += other.
  void Merge(const HistogramSnapshot& other);

  double MeanNanos() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_nanos) /
                            static_cast<double>(count);
  }
  /// Upper edge (ns) of the bucket containing quantile `q` in [0, 1];
  /// 0 when empty. Log-bucket resolution: within a factor of 2.
  double QuantileNanos(double q) const;
};

/// The standard percentile summary of one latency series, in
/// microseconds (log-bucket resolution: each percentile is the upper
/// edge of its bucket, within a factor of 2).
struct LatencyPercentiles {
  uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

LatencyPercentiles SummarizeLatency(const HistogramSnapshot& histogram);

/// Entries retained in the accuracy sampler's sliding window.
inline constexpr size_t kAccuracyWindow = 512;

/// The accuracy sampler's state at one instant: how many samples were
/// ever recorded and the most recent window of signed relative errors
/// (oldest-to-newest order is not preserved; the window is a ring).
struct AccuracySnapshot {
  uint64_t recorded = 0;
  std::vector<double> window;

  /// Mean signed relative error over the window (~0 when the estimator
  /// is unbiased); 0 when empty.
  double Mean() const;
  /// Mean absolute relative error over the window; 0 when empty.
  double MeanAbs() const;
  /// Quantile of |relative error| over the window, q in [0, 1].
  double QuantileAbs(double q) const;
};

/// Aggregated view of the whole registry at one instant.
struct MetricsSnapshot {
  CounterArray counters{};
  std::array<HistogramSnapshot, kLatencySeries> latency{};
  AccuracySnapshot accuracy;

  /// Component-wise this - earlier (both from the same registry;
  /// `earlier` taken first). Negative differences clamp to 0. The
  /// accuracy window is not differenced (it is already a sliding
  /// window); the delta keeps this snapshot's window and subtracts
  /// recorded counts.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// Stable-schema JSON export (schema_version kMetricsSchemaVersion):
  ///   {"schema_version": 2,
  ///    "counters": {"estimates": 12, ...},
  ///    "estimate_latency": {"MSH": {"count": n, "sum_nanos": s,
  ///        "mean_us": m, "p50_us": a, "p90_us": ..., "p95_us": ...,
  ///        "p99_us": b, "buckets": [..32 counts..]}, ...},
  ///    "accuracy": {"recorded": r, "window": w, "mean": ...,
  ///        "mean_abs": ..., "p50_abs": ..., "p99_abs": ...}}
  /// Series with count 0 are still emitted (all-zero) so consumers can
  /// rely on the keys.
  std::string ToJson() const;
};

/// The process-wide registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  /// Bumps a counter on the calling thread's slot.
  void Add(Counter counter, uint64_t delta = 1) {
    LocalSlot().Add(static_cast<size_t>(counter), delta);
  }

  /// Records one estimate latency into series `series`
  /// (< kLatencySeries, core::Algorithm order).
  void RecordLatency(size_t series, uint64_t nanos);

  /// Records one accuracy-sampler observation (signed relative error)
  /// into the sliding window. Thread-safe; lock-free (one fetch_add +
  /// one relaxed store).
  void RecordAccuracySample(double relative_error);

  /// Aggregates all thread slots.
  MetricsSnapshot Snapshot() const;

 private:
  struct alignas(64) ThreadSlot {
    std::array<std::atomic<uint64_t>, kCounterCount> counts{};
    std::array<std::array<std::atomic<uint64_t>, kLatencyBuckets>,
               kLatencySeries>
        latency_buckets{};
    std::array<std::atomic<uint64_t>, kLatencySeries> latency_sum_nanos{};

    /// Single-writer increment: plain load + store, not an RMW.
    void Add(size_t i, uint64_t delta) {
      counts[i].store(counts[i].load(std::memory_order_relaxed) + delta,
                      std::memory_order_relaxed);
    }
  };

  /// Binds a slot to the thread on first use and returns it to the
  /// registry's free list when the thread exits (counts intact —
  /// counters are cumulative, so a later thread resumes the slot).
  class SlotLease;

  MetricsRegistry() = default;
  ThreadSlot& LocalSlot();
  ThreadSlot* AcquireSlot();
  void ReleaseSlot(ThreadSlot* slot);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
  std::vector<ThreadSlot*> free_slots_;

  /// The accuracy sampler's window: a simple overwrite ring. Samples
  /// are rare (1 in N requests) and a torn double is impossible
  /// (atomic), so a plain fetch_add index is enough; the snapshot
  /// reads whatever mix of old and new samples is present.
  std::atomic<uint64_t> accuracy_count_{0};
  std::array<std::atomic<double>, kAccuracyWindow> accuracy_window_{};
};

/// Convenience for instrumentation sites.
inline void CountEvent(Counter counter, uint64_t delta = 1) {
  MetricsRegistry::Get().Add(counter, delta);
}

}  // namespace twig::obs

#endif  // TWIG_OBS_METRICS_H_
