// Minimal JSON writer and reader for the observability exports
// (explain traces, metrics snapshots) and the serving layer's wire
// protocol. The writer emits compact, stable-key-order JSON; commas
// and nesting are managed by a small state stack so callers can't
// produce structurally invalid output. The reader (ParseJson) is a
// strict, depth-limited recursive-descent parser for complete
// documents — enough to decode wire requests and to round-trip
// everything the writer emits (including \u-escaped control bytes).

#ifndef TWIG_OBS_JSON_H_
#define TWIG_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace twig::obs {

/// Streaming JSON writer.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("estimate"); w.Double(17.3);
///   w.Key("pieces");   w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string json = std::move(w).str();
class JsonWriter {
 public:
  void BeginObject() { OpenContainer('{'); }
  void EndObject() { CloseContainer('}'); }
  void BeginArray() { OpenContainer('['); }
  void EndArray() { CloseContainer(']'); }

  /// Object key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Bool(bool value);
  /// Doubles render with up to 17 significant digits (round-trippable);
  /// NaN and infinities, which JSON cannot represent, render as null.
  void Double(double value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Null();
  /// Appends pre-rendered JSON verbatim as a single value (e.g. a
  /// nested document produced by another writer, or Trace::ToJson
  /// output embedded in a wire response). The caller guarantees `json`
  /// is one complete, valid JSON value.
  void RawValue(std::string_view json);

  /// The finished document. All containers must be closed.
  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  enum class Frame : unsigned char { kObject, kArray };

  void OpenContainer(char open);
  void CloseContainer(char close);
  /// Emits the separating comma before a value or key if needed.
  void Separate();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<Frame> stack_;
  bool needs_comma_ = false;
};

/// A parsed JSON value. Objects preserve member order; duplicate keys
/// are kept as-is (Find returns the first). Numbers are doubles, like
/// JSON itself.
struct JsonValue {
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // objects
  std::vector<JsonValue> elements;                         // arrays

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member lookups: `fallback` when the key is absent or the
  /// member has a different kind.
  std::string_view GetString(std::string_view key,
                             std::string_view fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
};

/// Parses one complete JSON document: the whole input must be consumed
/// apart from surrounding whitespace (trailing bytes are a ParseError).
/// Strings decode every escape the writer emits, including \uXXXX
/// control bytes (and UTF-16 surrogate pairs, re-encoded as UTF-8).
/// Nesting is limited to 64 levels so hostile wire input cannot blow
/// the stack.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace twig::obs

#endif  // TWIG_OBS_JSON_H_
