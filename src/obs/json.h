// Minimal JSON writer for the observability exports (explain traces,
// metrics snapshots). Emits compact, stable-key-order JSON; commas and
// nesting are managed by a small state stack so callers can't produce
// structurally invalid output. Not a general-purpose serializer: no
// parsing, no pretty printing beyond optional indentation.

#ifndef TWIG_OBS_JSON_H_
#define TWIG_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace twig::obs {

/// Streaming JSON writer.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("estimate"); w.Double(17.3);
///   w.Key("pieces");   w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string json = std::move(w).str();
class JsonWriter {
 public:
  void BeginObject() { OpenContainer('{'); }
  void EndObject() { CloseContainer('}'); }
  void BeginArray() { OpenContainer('['); }
  void EndArray() { CloseContainer(']'); }

  /// Object key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Bool(bool value);
  /// Doubles render with up to 17 significant digits (round-trippable);
  /// NaN and infinities, which JSON cannot represent, render as null.
  void Double(double value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Null();

  /// The finished document. All containers must be closed.
  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  enum class Frame : unsigned char { kObject, kArray };

  void OpenContainer(char open);
  void CloseContainer(char close);
  /// Emits the separating comma before a value or key if needed.
  void Separate();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<Frame> stack_;
  bool needs_comma_ = false;
};

}  // namespace twig::obs

#endif  // TWIG_OBS_JSON_H_
