// Per-query explain traces (the observability layer's "EXPLAIN").
//
// A Trace is an optional sink attached to core::EstimateOptions: when
// non-null, the estimator records how the estimate was produced — the
// decomposition into pieces, every subpath resolved against the CST
// (hit with its presence/occurrence counts, or charged the
// missing_count fallback), every set-hash intersection (inputs,
// matching components, resemblance, whether it degraded to pure-MO
// conditioning), and every maximal-overlap combination term (the
// Pr(piece) numerator and Pr(overlap) denominator with the running
// estimate). The trace renders as human-readable text (ToText) and as
// stable-schema JSON (ToJson; schema documented in DESIGN.md §9).
//
// Tracing is strictly per query: a Trace is not thread-safe and must
// not be shared across concurrent estimates (EstimateBatch ignores an
// attached sink for exactly this reason). The untraced hot path pays a
// null-pointer check only.

#ifndef TWIG_OBS_TRACE_H_
#define TWIG_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace twig::obs {

/// One root-anchored subpath resolved against the CST.
struct SubpathTrace {
  /// The subpath in symbol form, e.g. "book.author.S" (tags and leaf
  /// value characters dot-separated). For hits this is the CST node's
  /// own subpath; for misses it is the query-side sequence that failed
  /// (unknown tags render as "?").
  std::string subpath;
  /// True when the CST resolved the subpath; false when the combiner
  /// charged the missing-count fallback.
  bool hit = false;
  double presence = 0;    // C_p (hits only)
  double occurrence = 0;  // C_o (hits only)
  /// Number of CST nodes aggregated to resolve the subpath: 1 for a
  /// plain lookup, > 1 when a wildcard or descendant step summed
  /// counts over a frontier of label paths (0 for misses).
  size_t aggregated = 0;
  /// The count actually used under the active semantics (the
  /// missing_count for misses).
  double count = 0;
};

/// One k-way set-hash intersection of twiglet branch groups.
struct IntersectionTrace {
  std::vector<std::string> inputs;  // group prefix subpaths
  std::vector<double> input_sizes;  // their presence counts
  size_t signatures = 0;            // inputs that carried a signature
  size_t matching_components = 0;   // the estimate's support
  double resemblance = 0;
  double estimate = 0;  // presence-intersection estimate (0 if fallback)
  /// True when the intersection was below the signatures' resolution
  /// and the twiglet degraded to pure-MO conditioning.
  bool fallback = false;
};

/// One estimand piece, in combination (application) order.
struct PieceTrace {
  std::string label;          // the piece's atoms in query form
  size_t num_subpaths = 0;    // 1 = plain subpath, >= 2 = twiglet
  bool missing = false;       // single atom with no CST match
  double count = 0;           // the combiner's count for the piece
  std::vector<SubpathTrace> subpaths;
  std::vector<IntersectionTrace> intersections;
};

/// One combination term: estimate *= piece_prob / overlap_prob.
struct CombineTermTrace {
  size_t piece = 0;        // index into Trace::pieces
  double piece_prob = 0;   // Pr(piece) = count / N
  std::string overlap;     // already-covered atoms ("" if none)
  double overlap_prob = 1; // Pr(overlap) divisor
  bool skipped = false;    // piece fully covered: contributed nothing
  double running_estimate = 0;
};

/// Version of the trace JSON schema (the "schema_version" field of
/// Trace::ToJson). Bump on any key change.
inline constexpr uint64_t kTraceSchemaVersion = 2;

/// The full explain record for one Estimate call.
struct Trace {
  std::string query;      // query::FormatTwig rendering
  std::string algorithm;  // core::AlgorithmName
  std::string semantics;  // "presence" | "occurrence"
  /// Extra context, e.g. Leaf's per-leaf independence combination.
  std::string note;
  double data_node_count = 0;  // N, the probability normalizer
  double missing_count = 0;    // resolved fallback count
  std::vector<PieceTrace> pieces;
  std::vector<CombineTermTrace> terms;
  double estimate = 0;

  /// Reuses the buffers for another query.
  void Clear();

  /// Multi-line human-readable rendering.
  std::string ToText() const;

  /// Stable-schema JSON (DESIGN.md §9).
  std::string ToJson() const;
};

}  // namespace twig::obs

#endif  // TWIG_OBS_TRACE_H_
