#include "obs/span.h"

#include <utility>

namespace twig::obs {

const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kAdmitted:
      return "admitted";
    case SpanStage::kCacheLookup:
      return "cache_lookup";
    case SpanStage::kEnqueued:
      return "enqueued";
    case SpanStage::kDequeued:
      return "dequeued";
    case SpanStage::kPinned:
      return "pinned";
    case SpanStage::kEstimated:
      return "estimated";
    case SpanStage::kReplied:
      return "replied";
    case SpanStage::kCount:
      break;
  }
  return "?";
}

const char* SpanOutcomeName(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kServed:
      return "served";
    case SpanOutcome::kCacheHit:
      return "cache_hit";
    case SpanOutcome::kFailed:
      return "failed";
    case SpanOutcome::kDeadlineMiss:
      return "deadline_miss";
    case SpanOutcome::kRejected:
      return "rejected";
    case SpanOutcome::kCount:
      break;
  }
  return "?";
}

uint64_t SpanRecord::total_ns() const {
  uint64_t total = 0;
  for (uint64_t offset : offset_ns) {
    if (offset != kSpanStageUnset && offset > total) total = offset;
  }
  return total;
}

void RequestSpan::Begin(uint64_t request_id, std::string query,
                        uint8_t series,
                        std::chrono::steady_clock::time_point admitted) {
  active = true;
  start = admitted;
  record = SpanRecord();
  record.request_id = request_id;
  record.query = std::move(query);
  record.series = series;
  record.offset_ns[static_cast<size_t>(SpanStage::kAdmitted)] = 0;
}

void RequestSpan::Mark(SpanStage stage) {
  if (!active) return;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  record.offset_ns[static_cast<size_t>(stage)] = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

}  // namespace twig::obs
