// The flight recorder: a lock-free, fixed-size ring of the most recent
// completed request spans, plus a second retained ring for slow
// outliers (the "slow log").
//
// Writers never block and never wait for readers: a writer claims a
// slot by bumping a monotone head counter, takes exclusive ownership
// of the slot with a single CAS on the slot's generation-tagged
// sequence word, fills the payload, and releases the slot by storing
// the next generation's sequence. Readers (Snapshot) validate each
// slot's sequence before *and* after copying the payload and skip
// slots that were mid-write or were lapped meanwhile, so a snapshot
// taken while writers race contains only whole records — never a torn
// one. Every payload field is an atomic accessed with relaxed
// ordering (publication ordering comes from the sequence word's
// acquire/release pair), so the protocol is data-race-free under the
// C++ memory model and runs clean under TSan.
//
// If the ring wraps around faster than a slow writer finishes (a lap:
// head advanced a full capacity within one Record call), the colliding
// writer drops its record and counts it instead of spinning — the
// recorder prefers losing one record to ever stalling the serving
// path. With capacities of tens of entries and microsecond writes this
// does not happen in practice; `dropped()` makes it visible if it
// does.
//
// The slow log reuses the same ring: a completed span whose total
// duration reaches the configured threshold is recorded a second time
// into the smaller slow ring, so rare outliers survive long after the
// main ring has churned past them.

#ifndef TWIG_OBS_FLIGHT_RECORDER_H_
#define TWIG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.h"

namespace twig::obs {

/// Query-text bytes retained per ring slot (longer queries truncate).
inline constexpr size_t kSpanQueryBytes = 48;

/// A lock-free MPMC overwrite ring of SpanRecords. See the file
/// comment for the protocol.
class SpanRing {
 public:
  /// `entries` is rounded up to a power of two, minimum 8.
  explicit SpanRing(size_t entries);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Records `span`, overwriting the oldest entry once full. Returns
  /// false (and counts a drop) on a writer collision — the ring lapped
  /// this writer mid-record.
  bool Record(const SpanRecord& span);

  /// The retained records, oldest first. Only whole records: slots
  /// being written (or lapped) while the snapshot runs are skipped.
  std::vector<SpanRecord> Snapshot() const;

  size_t capacity() const { return capacity_; }
  /// Total records ever accepted / dropped on collision.
  uint64_t recorded() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  /// One slot: a generation-tagged sequence word plus an all-atomic
  /// payload. For the slot of ring index i, generation g runs over
  /// i, i+N, i+2N, ...; seq == 2*g means "stable, last written at
  /// generation g-N" (the initial value 2*i reads as "empty"),
  /// seq == 2*g+1 means "generation g's writer is inside".
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> request_id{0};
    std::array<std::atomic<char>, kSpanQueryBytes> query{};
    std::atomic<uint8_t> query_len{0};
    std::atomic<uint8_t> series{0};
    std::atomic<uint8_t> outcome{0};
    std::array<std::atomic<uint64_t>, kSpanStageCount> offset_ns{};
    std::atomic<double> estimate{0};
    std::atomic<uint64_t> snapshot_version{0};
    std::atomic<bool> accuracy_sampled{false};
    std::atomic<double> relative_error{0};
    std::atomic<bool> fault_injected{false};
  };

  size_t capacity_;
  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  /// Total slots ever claimed (claims that collide become drops).
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> dropped_{0};
};

struct FlightRecorderOptions {
  /// Main ring entries (rounded up to a power of two).
  size_t entries = 256;
  /// Slow-log ring entries.
  size_t slow_entries = 64;
  /// A span whose total duration reaches this is also retained in the
  /// slow log; 0 disables the slow log.
  uint64_t slow_threshold_ns = 0;
};

/// The recorder the serving layer feeds: every completed span lands in
/// the main ring, slow outliers additionally in the slow ring. All
/// methods are thread-safe.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const SpanRecord& span);

  std::vector<SpanRecord> RecentSpans() const { return spans_.Snapshot(); }
  std::vector<SpanRecord> SlowSpans() const { return slow_.Snapshot(); }

  /// JSON array of the retained spans / slow spans (schema: DESIGN.md
  /// §13), oldest first.
  std::string SpansJson() const { return ToJsonArray(RecentSpans()); }
  std::string SlowJson() const { return ToJsonArray(SlowSpans()); }

  struct Stats {
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    uint64_t slow_recorded = 0;
    size_t capacity = 0;
    size_t slow_capacity = 0;
    uint64_t slow_threshold_ns = 0;
  };
  Stats stats() const;

  uint64_t slow_threshold_ns() const { return slow_threshold_ns_; }

 private:
  static std::string ToJsonArray(const std::vector<SpanRecord>& records);

  const uint64_t slow_threshold_ns_;
  SpanRing spans_;
  SpanRing slow_;
};

/// One span record as a JSON object (the `recent` verb's element
/// schema): id, query, algo, outcome, version, estimate, total_us, the
/// reached stages as stages_us, and relative_error when the accuracy
/// sampler covered the request.
std::string SpanRecordToJson(const SpanRecord& record);

}  // namespace twig::obs

#endif  // TWIG_OBS_FLIGHT_RECORDER_H_
