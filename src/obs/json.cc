#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace twig::obs {

void JsonWriter::Separate() {
  if (needs_comma_) out_.push_back(',');
  needs_comma_ = false;
}

void JsonWriter::OpenContainer(char open) {
  Separate();
  out_.push_back(open);
  stack_.push_back(open == '{' ? Frame::kObject : Frame::kArray);
}

void JsonWriter::CloseContainer(char close) {
  stack_.pop_back();
  out_.push_back(close);
  needs_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  AppendEscaped(key);
  out_.push_back(':');
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::String(std::string_view value) {
  Separate();
  AppendEscaped(value);
  needs_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out_ += buf;
  }
  needs_comma_ = true;
}

void JsonWriter::Uint(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
  needs_comma_ = true;
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  out_.append(json);
  needs_comma_ = true;
}

// ---------------------------------------------------------------------------
// Reader

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string_view JsonValue::GetString(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string_value : fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number_value : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_value : fallback;
}

namespace {

/// Strict recursive-descent parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth >= kMaxDepth) {
      return Status::ParseError("JSON nested too deeply");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) break;
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) break;
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) break;
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
    return Status::ParseError("unrecognized JSON token");
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::ParseError("expected object key");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Status::ParseError("expected ':' after key");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Status::ParseError("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Status::ParseError("expected ',' or ']' in array");
    }
  }

  /// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  /// Parses the 4 hex digits of a \uXXXX escape; false on malformed.
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
      value = value << 4 | digit;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Status::ParseError("raw control byte in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code;
          if (!ParseHex4(&code)) {
            return Status::ParseError("malformed \\u escape");
          }
          if (code >= 0xd800 && code < 0xdc00) {
            // High surrogate: must pair with \uDC00-\uDFFF.
            uint32_t low;
            if (!ConsumeLiteral("\\u") || !ParseHex4(&low) || low < 0xdc00 ||
                low > 0xdfff) {
              return Status::ParseError("unpaired UTF-16 surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code < 0xe000) {
            return Status::ParseError("unpaired UTF-16 surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Status::ParseError("unknown escape in string");
      }
    }
    return Status::ParseError("unterminated string");
  }

  /// True iff `text` matches the JSON number grammar exactly —
  /// stricter than strtod, which also takes "+1", "01", "1.", ".5".
  static bool IsJsonNumber(std::string_view text) {
    size_t i = 0;
    const auto digits = [&] {
      const size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      return i > start;
    };
    if (i < text.size() && text[i] == '-') ++i;
    if (i < text.size() && text[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (i < text.size() && text[i] == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
      ++i;
      if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return i == text.size();
  }

  Status ParseNumber(JsonValue* out) {
    // Take the maximal run of number-ish bytes, then validate the run
    // against the JSON grammar (so "1-2", "01", "1." all fail) before
    // strtod converts it.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("unrecognized JSON token");
    const std::string text(text_.substr(start, pos_ - start));
    if (!IsJsonNumber(text)) return Status::ParseError("malformed number");
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || errno == ERANGE) {
      return Status::ParseError("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace twig::obs
