#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace twig::obs {

void JsonWriter::Separate() {
  if (needs_comma_) out_.push_back(',');
  needs_comma_ = false;
}

void JsonWriter::OpenContainer(char open) {
  Separate();
  out_.push_back(open);
  stack_.push_back(open == '{' ? Frame::kObject : Frame::kArray);
}

void JsonWriter::CloseContainer(char close) {
  stack_.pop_back();
  out_.push_back(close);
  needs_comma_ = true;
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  AppendEscaped(key);
  out_.push_back(':');
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::String(std::string_view value) {
  Separate();
  AppendEscaped(value);
  needs_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out_ += buf;
  }
  needs_comma_ = true;
}

void JsonWriter::Uint(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  needs_comma_ = true;
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
  needs_comma_ = true;
}

}  // namespace twig::obs
