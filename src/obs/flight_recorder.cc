#include "obs/flight_recorder.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"
#include "obs/metrics.h"

namespace twig::obs {

namespace {

size_t RoundUpPow2(size_t n, size_t minimum) {
  n = std::max(n, minimum);
  return std::bit_ceil(n);
}

}  // namespace

SpanRing::SpanRing(size_t entries)
    : capacity_(RoundUpPow2(entries, 8)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {
  // Slot i's first writer is generation i and expects seq == 2*i.
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(2 * static_cast<uint64_t>(i),
                        std::memory_order_relaxed);
  }
}

bool SpanRing::Record(const SpanRecord& span) {
  const uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];
  // Exclusive claim: only the writer that flips 2*pos -> 2*pos+1 may
  // touch the payload. The CAS fails only when the previous
  // generation's writer is still inside (the ring lapped it); acquire
  // on success keeps our payload stores from being observed before the
  // odd sequence value.
  uint64_t expected = 2 * pos;
  if (!slot.seq.compare_exchange_strong(expected, 2 * pos + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slot.request_id.store(span.request_id, std::memory_order_relaxed);
  const size_t len = std::min(span.query.size(), kSpanQueryBytes);
  for (size_t i = 0; i < len; ++i) {
    slot.query[i].store(span.query[i], std::memory_order_relaxed);
  }
  slot.query_len.store(static_cast<uint8_t>(len), std::memory_order_relaxed);
  slot.series.store(span.series, std::memory_order_relaxed);
  slot.outcome.store(static_cast<uint8_t>(span.outcome),
                     std::memory_order_relaxed);
  for (size_t s = 0; s < kSpanStageCount; ++s) {
    slot.offset_ns[s].store(span.offset_ns[s], std::memory_order_relaxed);
  }
  slot.estimate.store(span.estimate, std::memory_order_relaxed);
  slot.snapshot_version.store(span.snapshot_version,
                              std::memory_order_relaxed);
  slot.accuracy_sampled.store(span.accuracy_sampled,
                              std::memory_order_relaxed);
  slot.relative_error.store(span.relative_error, std::memory_order_relaxed);
  slot.fault_injected.store(span.fault_injected, std::memory_order_relaxed);
  // Release: the payload is visible to any reader that sees this
  // sequence value. 2*(pos + capacity) is both "stable" for readers of
  // generation pos and the expected value for the slot's next writer.
  slot.seq.store(2 * (pos + capacity_), std::memory_order_release);
  return true;
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<size_t>(head - begin));
  for (uint64_t pos = begin; pos < head; ++pos) {
    const Slot& slot = slots_[pos & mask_];
    const uint64_t stable = 2 * (pos + capacity_);
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != stable) continue;  // unwritten, mid-write, or lapped
    SpanRecord record;
    record.request_id = slot.request_id.load(std::memory_order_relaxed);
    const size_t len = std::min<size_t>(
        slot.query_len.load(std::memory_order_relaxed), kSpanQueryBytes);
    record.query.resize(len);
    for (size_t i = 0; i < len; ++i) {
      record.query[i] = slot.query[i].load(std::memory_order_relaxed);
    }
    record.series = slot.series.load(std::memory_order_relaxed);
    record.outcome = static_cast<SpanOutcome>(
        std::min<uint8_t>(slot.outcome.load(std::memory_order_relaxed),
                          static_cast<uint8_t>(SpanOutcome::kCount) - 1));
    for (size_t s = 0; s < kSpanStageCount; ++s) {
      record.offset_ns[s] = slot.offset_ns[s].load(std::memory_order_relaxed);
    }
    record.estimate = slot.estimate.load(std::memory_order_relaxed);
    record.snapshot_version =
        slot.snapshot_version.load(std::memory_order_relaxed);
    record.accuracy_sampled =
        slot.accuracy_sampled.load(std::memory_order_relaxed);
    record.relative_error =
        slot.relative_error.load(std::memory_order_relaxed);
    record.fault_injected =
        slot.fault_injected.load(std::memory_order_relaxed);
    // Re-validate: if a writer claimed the slot while we copied, the
    // sequence moved off the stable value and the copy may be torn.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    out.push_back(std::move(record));
  }
  return out;
}

uint64_t SpanRing::recorded() const {
  const uint64_t claims = head_.load(std::memory_order_relaxed);
  const uint64_t drops = dropped_.load(std::memory_order_relaxed);
  return claims >= drops ? claims - drops : 0;
}

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : slow_threshold_ns_(options.slow_threshold_ns),
      spans_(options.entries),
      slow_(options.slow_entries) {}

void FlightRecorder::Record(const SpanRecord& span) {
  spans_.Record(span);
  if (slow_threshold_ns_ > 0 && span.total_ns() >= slow_threshold_ns_) {
    slow_.Record(span);
  }
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats stats;
  stats.recorded = spans_.recorded();
  stats.dropped = spans_.dropped() + slow_.dropped();
  stats.slow_recorded = slow_.recorded();
  stats.capacity = spans_.capacity();
  stats.slow_capacity = slow_.capacity();
  stats.slow_threshold_ns = slow_threshold_ns_;
  return stats;
}

std::string FlightRecorder::ToJsonArray(
    const std::vector<SpanRecord>& records) {
  JsonWriter w;
  w.BeginArray();
  for (const SpanRecord& record : records) w.RawValue(SpanRecordToJson(record));
  w.EndArray();
  return std::move(w).str();
}

std::string SpanRecordToJson(const SpanRecord& record) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.Uint(record.request_id);
  w.Key("query");
  w.String(record.query);
  w.Key("algo");
  w.String(record.series < kLatencySeries ? kLatencySeriesNames[record.series]
                                          : "?");
  w.Key("outcome");
  w.String(SpanOutcomeName(record.outcome));
  w.Key("version");
  w.Uint(record.snapshot_version);
  w.Key("estimate");
  w.Double(record.estimate);
  w.Key("total_us");
  w.Double(static_cast<double>(record.total_ns()) / 1e3);
  w.Key("stages_us");
  w.BeginObject();
  for (size_t s = 0; s < kSpanStageCount; ++s) {
    if (record.offset_ns[s] == kSpanStageUnset) continue;
    w.Key(SpanStageName(static_cast<SpanStage>(s)));
    w.Double(static_cast<double>(record.offset_ns[s]) / 1e3);
  }
  w.EndObject();
  if (record.accuracy_sampled) {
    w.Key("relative_error");
    w.Double(record.relative_error);
  }
  if (record.fault_injected) {
    w.Key("fault_injected");
    w.Bool(true);
  }
  w.EndObject();
  return std::move(w).str();
}

}  // namespace twig::obs
