#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"

namespace twig::obs {

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kEstimates:
      return "estimates";
    case Counter::kTracesRecorded:
      return "traces_recorded";
    case Counter::kCstSubpathLookups:
      return "cst_subpath_lookups";
    case Counter::kCstSubpathHits:
      return "cst_subpath_hits";
    case Counter::kCstSubpathMisses:
      return "cst_subpath_misses";
    case Counter::kSethashIntersections:
      return "sethash_intersections";
    case Counter::kTwigletMoFallbacks:
      return "twiglet_mo_fallbacks";
    case Counter::kBatches:
      return "batches";
    case Counter::kServeEnqueued:
      return "serve_enqueued";
    case Counter::kServeServed:
      return "serve_served";
    case Counter::kServeRejected:
      return "serve_rejected";
    case Counter::kServeDeadlineMisses:
      return "serve_deadline_misses";
    case Counter::kSnapshotPublishes:
      return "snapshot_publishes";
    case Counter::kServeCacheHits:
      return "serve_cache_hits";
    case Counter::kServeCacheMisses:
      return "serve_cache_misses";
    case Counter::kServeCacheEvictions:
      return "serve_cache_evictions";
    case Counter::kServeAccuracySamples:
      return "serve_accuracy_samples";
    case Counter::kServeAccuracyFailures:
      return "serve_accuracy_failures";
    case Counter::kFaultInjected:
      return "fault_injected";
    case Counter::kRetries:
      return "retries";
    case Counter::kBrownoutSheds:
      return "brownout_sheds";
    case Counter::kRebuildFailures:
      return "rebuild_failures";
    case Counter::kStoragePageReads:
      return "storage_page_reads";
    case Counter::kStoragePagePins:
      return "storage_page_pins";
    case Counter::kStoragePageEvictions:
      return "storage_page_evictions";
    case Counter::kStorageChecksumFailures:
      return "storage_checksum_failures";
    case Counter::kServeTenantAdmitted:
      return "serve_tenant_admitted";
    case Counter::kServeTenantThrottled:
      return "serve_tenant_throttled";
    case Counter::kServeAcceptRetries:
      return "serve_accept_retries";
    case Counter::kCount:
      break;
  }
  return "?";
}

const std::array<const char*, kLatencySeries> kLatencySeriesNames = {
    "Leaf",  "Greedy", "MO",         "MOSH",
    "PMOSH", "MSH",    "serve_wait", "serve_cache_hit"};

std::string CountersToJson(const CounterArray& counters) {
  JsonWriter w;
  w.BeginObject();
  for (size_t i = 0; i < kCounterCount; ++i) {
    w.Key(CounterName(static_cast<Counter>(i)));
    w.Uint(counters[i]);
  }
  w.EndObject();
  return std::move(w).str();
}

namespace {

size_t LatencyBucket(uint64_t nanos) {
  return std::min<size_t>(
      nanos == 0 ? 0 : static_cast<size_t>(std::bit_width(nanos)),
      kLatencyBuckets - 1);
}

}  // namespace

void HistogramSnapshot::Record(uint64_t nanos) {
  buckets[LatencyBucket(nanos)] += 1;
  count += 1;
  sum_nanos += nanos;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t b = 0; b < kLatencyBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum_nanos += other.sum_nanos;
}

double HistogramSnapshot::QuantileNanos(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += buckets[i];
    if (seen > target || (seen == count && seen > 0)) {
      return static_cast<double>(uint64_t{1} << i);  // bucket upper edge
    }
  }
  return static_cast<double>(uint64_t{1} << (kLatencyBuckets - 1));
}

LatencyPercentiles SummarizeLatency(const HistogramSnapshot& histogram) {
  LatencyPercentiles p;
  p.count = histogram.count;
  p.mean_us = histogram.MeanNanos() / 1e3;
  p.p50_us = histogram.QuantileNanos(0.5) / 1e3;
  p.p90_us = histogram.QuantileNanos(0.9) / 1e3;
  p.p95_us = histogram.QuantileNanos(0.95) / 1e3;
  p.p99_us = histogram.QuantileNanos(0.99) / 1e3;
  return p;
}

double AccuracySnapshot::Mean() const {
  if (window.empty()) return 0.0;
  double sum = 0;
  for (double e : window) sum += e;
  return sum / static_cast<double>(window.size());
}

double AccuracySnapshot::MeanAbs() const {
  if (window.empty()) return 0.0;
  double sum = 0;
  for (double e : window) sum += std::abs(e);
  return sum / static_cast<double>(window.size());
}

double AccuracySnapshot::QuantileAbs(double q) const {
  if (window.empty()) return 0.0;
  std::vector<double> abs_errors;
  abs_errors.reserve(window.size());
  for (double e : window) abs_errors.push_back(std::abs(e));
  std::sort(abs_errors.begin(), abs_errors.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = std::min(
      abs_errors.size() - 1,
      static_cast<size_t>(q * static_cast<double>(abs_errors.size())));
  return abs_errors[idx];
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  auto minus = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  MetricsSnapshot out;
  for (size_t i = 0; i < kCounterCount; ++i) {
    out.counters[i] = minus(counters[i], earlier.counters[i]);
  }
  for (size_t s = 0; s < kLatencySeries; ++s) {
    out.latency[s].count = minus(latency[s].count, earlier.latency[s].count);
    out.latency[s].sum_nanos =
        minus(latency[s].sum_nanos, earlier.latency[s].sum_nanos);
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      out.latency[s].buckets[b] =
          minus(latency[s].buckets[b], earlier.latency[s].buckets[b]);
    }
  }
  out.accuracy.recorded = minus(accuracy.recorded, earlier.accuracy.recorded);
  out.accuracy.window = accuracy.window;
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Uint(kMetricsSchemaVersion);
  w.Key("counters");
  w.BeginObject();
  for (size_t i = 0; i < kCounterCount; ++i) {
    w.Key(CounterName(static_cast<Counter>(i)));
    w.Uint(counters[i]);
  }
  w.EndObject();
  w.Key("estimate_latency");
  w.BeginObject();
  for (size_t s = 0; s < kLatencySeries; ++s) {
    const HistogramSnapshot& h = latency[s];
    w.Key(kLatencySeriesNames[s]);
    w.BeginObject();
    w.Key("count");
    w.Uint(h.count);
    w.Key("sum_nanos");
    w.Uint(h.sum_nanos);
    const LatencyPercentiles p = SummarizeLatency(h);
    w.Key("mean_us");
    w.Double(p.mean_us);
    w.Key("p50_us");
    w.Double(p.p50_us);
    w.Key("p90_us");
    w.Double(p.p90_us);
    w.Key("p95_us");
    w.Double(p.p95_us);
    w.Key("p99_us");
    w.Double(p.p99_us);
    w.Key("buckets");
    w.BeginArray();
    for (uint64_t b : h.buckets) w.Uint(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("accuracy");
  w.BeginObject();
  w.Key("recorded");
  w.Uint(accuracy.recorded);
  w.Key("window");
  w.Uint(accuracy.window.size());
  w.Key("mean");
  w.Double(accuracy.Mean());
  w.Key("mean_abs");
  w.Double(accuracy.MeanAbs());
  w.Key("p50_abs");
  w.Double(accuracy.QuantileAbs(0.5));
  w.Key("p99_abs");
  w.Double(accuracy.QuantileAbs(0.99));
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked singleton: worker threads may flush counters during static
  // destruction, so the registry must outlive every other static.
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

class MetricsRegistry::SlotLease {
 public:
  explicit SlotLease(MetricsRegistry* registry)
      : registry_(registry), slot_(registry->AcquireSlot()) {}
  ~SlotLease() { registry_->ReleaseSlot(slot_); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  ThreadSlot* slot() const { return slot_; }

 private:
  MetricsRegistry* registry_;
  ThreadSlot* slot_;
};

MetricsRegistry::ThreadSlot& MetricsRegistry::LocalSlot() {
  thread_local SlotLease lease(this);
  return *lease.slot();
}

MetricsRegistry::ThreadSlot* MetricsRegistry::AcquireSlot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_slots_.empty()) {
    ThreadSlot* slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(std::make_unique<ThreadSlot>());
  return slots_.back().get();
}

void MetricsRegistry::ReleaseSlot(ThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_slots_.push_back(slot);
}

void MetricsRegistry::RecordLatency(size_t series, uint64_t nanos) {
  ThreadSlot& slot = LocalSlot();
  const size_t bucket = LatencyBucket(nanos);
  auto bump = [](std::atomic<uint64_t>& a, uint64_t d) {
    a.store(a.load(std::memory_order_relaxed) + d,
            std::memory_order_relaxed);
  };
  bump(slot.latency_buckets[series][bucket], 1);
  bump(slot.latency_sum_nanos[series], nanos);
}

void MetricsRegistry::RecordAccuracySample(double relative_error) {
  const uint64_t i = accuracy_count_.fetch_add(1, std::memory_order_relaxed);
  accuracy_window_[i % kAccuracyWindow].store(relative_error,
                                              std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& slot : slots_) {
    for (size_t i = 0; i < kCounterCount; ++i) {
      out.counters[i] += slot->counts[i].load(std::memory_order_relaxed);
    }
    for (size_t s = 0; s < kLatencySeries; ++s) {
      out.latency[s].sum_nanos +=
          slot->latency_sum_nanos[s].load(std::memory_order_relaxed);
      for (size_t b = 0; b < kLatencyBuckets; ++b) {
        const uint64_t c =
            slot->latency_buckets[s][b].load(std::memory_order_relaxed);
        out.latency[s].buckets[b] += c;
        out.latency[s].count += c;
      }
    }
  }
  const uint64_t samples = accuracy_count_.load(std::memory_order_relaxed);
  out.accuracy.recorded = samples;
  const size_t filled =
      static_cast<size_t>(std::min<uint64_t>(samples, kAccuracyWindow));
  out.accuracy.window.reserve(filled);
  for (size_t i = 0; i < filled; ++i) {
    out.accuracy.window.push_back(
        accuracy_window_[i].load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace twig::obs
