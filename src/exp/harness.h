// Shared experiment harness for the bench binaries.
//
// Each figure/table binary in bench/ composes these pieces: build a
// data set, build its stage-one path suffix tree once, derive CSTs at
// several space fractions, run a workload through all estimation
// algorithms, and print the same rows/series the paper reports.

#ifndef TWIG_EXP_HARNESS_H_
#define TWIG_EXP_HARNESS_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "cst/cst.h"
#include "stats/metrics.h"
#include "suffix/path_suffix_tree.h"
#include "tree/tree.h"
#include "workload/workload.h"

namespace twig::exp {

/// The two corpora of Section 6.1.
enum class DatasetKind {
  kDblp,
  kSwissProt,
};

/// A data set plus everything reusable across space budgets.
struct Dataset {
  std::string name;
  tree::Tree tree;
  size_t xml_bytes = 0;  // denominator of "space %"
  suffix::PathSuffixTree pst;
};

/// Generates a data set and builds its path suffix tree.
Dataset MakeDataset(DatasetKind kind, size_t target_bytes, uint64_t seed);

/// Default experiment sizes (scaled-down stand-ins for the paper's
/// 50 MB DBLP / 5 MB SWISS-PROT; see DESIGN.md).
inline constexpr size_t kDefaultDblpBytes = 8 * 1024 * 1024;
inline constexpr size_t kDefaultSwissProtBytes = 2 * 1024 * 1024;

/// Builds a CST whose size is `fraction` of the data set's XML bytes.
cst::Cst BuildCstAtFraction(const Dataset& dataset, double fraction,
                            size_t signature_length = 64);

/// Per-algorithm evaluation of one workload against one CST.
struct AlgorithmEval {
  core::Algorithm algorithm;
  stats::ErrorAccumulator errors;
  stats::RatioHistogram ratios;
};

/// Runs every algorithm on every query; truth is the workload's
/// occurrence count (the experiments run on multiset data). Estimation
/// fans across `num_threads` workers (estimates are bit-identical to a
/// sequential run; accumulators are fed in query order afterwards).
std::vector<AlgorithmEval> EvaluateAll(const cst::Cst& summary,
                                       const workload::Workload& workload,
                                       size_t num_threads = 1);

/// Convenience: evaluation for a single algorithm. `stats`, if
/// non-null, receives the batch's per-thread counters.
AlgorithmEval EvaluateOne(const cst::Cst& summary,
                          const workload::Workload& workload,
                          core::Algorithm algorithm, size_t num_threads = 1,
                          stats::BatchStats* stats = nullptr);

/// JSON snapshot of the process-wide obs::MetricsRegistry (counters +
/// per-algorithm latency histograms; schema in DESIGN.md §9).
std::string MetricsSnapshotJson();

/// One-line observability summary of a batch run: throughput plus the
/// batch's CST hit rate and set-hash intersection count, derived from
/// stats.counter_deltas.
void PrintBatchObservability(const stats::BatchStats& stats);

/// Printing helpers for aligned report tables.
void PrintRule(size_t width = 78);
void PrintSeriesHeader(const std::string& first_column,
                       const std::vector<std::string>& series);
void PrintSeriesRow(const std::string& first_column,
                    const std::vector<double>& values, int digits = 3);

}  // namespace twig::exp

#endif  // TWIG_EXP_HARNESS_H_
