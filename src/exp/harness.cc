#include "exp/harness.h"

#include <cstdint>
#include <cstdio>

#include "data/generators.h"
#include "obs/metrics.h"
#include "xml/xml.h"

namespace twig::exp {

Dataset MakeDataset(DatasetKind kind, size_t target_bytes, uint64_t seed) {
  Dataset ds;
  if (kind == DatasetKind::kDblp) {
    data::DblpOptions options;
    options.target_bytes = target_bytes;
    options.seed = seed;
    ds.name = "dblp";
    ds.tree = data::GenerateDblp(options);
  } else {
    data::SwissProtOptions options;
    options.target_bytes = target_bytes;
    options.seed = seed;
    ds.name = "swissprot";
    ds.tree = data::GenerateSwissProt(options);
  }
  ds.xml_bytes = xml::XmlByteSize(ds.tree);
  ds.pst = suffix::PathSuffixTree::Build(ds.tree);
  return ds;
}

cst::Cst BuildCstAtFraction(const Dataset& dataset, double fraction,
                            size_t signature_length) {
  cst::CstOptions options;
  options.signature_length = signature_length;
  options.space_budget_bytes =
      static_cast<size_t>(fraction * static_cast<double>(dataset.xml_bytes));
  return cst::Cst::Build(dataset.tree, dataset.pst, options);
}

AlgorithmEval EvaluateOne(const cst::Cst& summary,
                          const workload::Workload& workload,
                          core::Algorithm algorithm, size_t num_threads,
                          stats::BatchStats* stats) {
  core::TwigEstimator estimator(&summary);
  core::BatchOptions options;
  options.num_threads = num_threads;
  const std::vector<double> estimates =
      estimator.EstimateBatch(workload, algorithm, options, stats);
  AlgorithmEval eval;
  eval.algorithm = algorithm;
  for (size_t i = 0; i < workload.size(); ++i) {
    eval.errors.Add(workload[i].truth.occurrence, estimates[i]);
    eval.ratios.Add(workload[i].truth.occurrence, estimates[i]);
  }
  return eval;
}

std::vector<AlgorithmEval> EvaluateAll(const cst::Cst& summary,
                                       const workload::Workload& workload,
                                       size_t num_threads) {
  std::vector<AlgorithmEval> out;
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    out.push_back(EvaluateOne(summary, workload, algorithm, num_threads));
  }
  return out;
}

std::string MetricsSnapshotJson() {
  return obs::MetricsRegistry::Get().Snapshot().ToJson();
}

void PrintBatchObservability(const stats::BatchStats& stats) {
  const auto counter = [&](obs::Counter c) {
    return stats.counter_deltas[static_cast<size_t>(c)];
  };
  const uint64_t lookups = counter(obs::Counter::kCstSubpathLookups);
  const uint64_t hits = counter(obs::Counter::kCstSubpathHits);
  std::printf(
      "obs: %zu queries, %.0f q/s | CST subpath lookups %llu "
      "(%.1f%% hit) | set-hash intersections %llu | MO fallbacks %llu\n",
      stats.total_queries(), stats.throughput_qps(),
      static_cast<unsigned long long>(lookups),
      lookups > 0 ? 100.0 * static_cast<double>(hits) /
                        static_cast<double>(lookups)
                  : 0.0,
      static_cast<unsigned long long>(
          counter(obs::Counter::kSethashIntersections)),
      static_cast<unsigned long long>(
          counter(obs::Counter::kTwigletMoFallbacks)));
  if (stats.queries_skipped > 0) {
    std::printf("obs: %zu queries skipped at the batch deadline\n",
                stats.queries_skipped);
  }
  if (stats.queries_failed > 0) {
    std::printf("obs: %zu queries failed to estimate\n",
                stats.queries_failed);
  }
}

void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void PrintSeriesHeader(const std::string& first_column,
                       const std::vector<std::string>& series) {
  std::printf("%-12s", first_column.c_str());
  for (const auto& s : series) std::printf("%12s", s.c_str());
  std::printf("\n");
  PrintRule(12 + 12 * series.size());
}

void PrintSeriesRow(const std::string& first_column,
                    const std::vector<double>& values, int digits) {
  std::printf("%-12s", first_column.c_str());
  for (double v : values) std::printf("%12.*f", digits, v);
  std::printf("\n");
}

}  // namespace twig::exp
