#include "data/vocab.h"

#include <cctype>
#include <unordered_set>

namespace twig::data {

namespace {

const char* const kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                               "k",  "l",  "m",  "n",  "p",  "r",  "s",
                               "t",  "v",  "w",  "z",  "st", "tr", "ch",
                               "br", "gr", "sh", "kl", "pr"};
const char* const kVowels[] = {"a",  "e",  "i",  "o",  "u",
                               "ai", "ou", "ie", "ea", "io"};
const char* const kCodas[] = {"",  "",  "",  "n", "r", "s",
                              "t", "l", "m", "k", "nd", "rt"};

template <typename T, size_t N>
const T& Pick(Rng& rng, const T (&arr)[N]) {
  return arr[rng.Uniform(N)];
}

}  // namespace

std::string MakeWord(Rng& rng, int syllables, WordStyle style) {
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += Pick(rng, kOnsets);
    word += Pick(rng, kVowels);
    if (s + 1 == syllables || rng.Bernoulli(0.4)) word += Pick(rng, kCodas);
  }
  if (style == WordStyle::kCapitalized && !word.empty()) {
    word[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(word[0])));
  }
  return word;
}

Vocabulary::Vocabulary(size_t size, double theta, WordStyle style, Rng& rng)
    : zipf_(size, theta) {
  std::unordered_set<std::string> seen;
  words_.reserve(size);
  while (words_.size() < size) {
    const int syllables = 2 + static_cast<int>(rng.Uniform(3));
    std::string word = MakeWord(rng, syllables, style);
    if (!seen.insert(word).second) {
      // Disambiguate collisions instead of rejection-looping forever
      // on small syllable spaces.
      word += MakeWord(rng, 1, WordStyle::kLowercase);
      if (!seen.insert(word).second) continue;
    }
    words_.push_back(std::move(word));
  }
}

}  // namespace twig::data
