#include "data/generators.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "data/vocab.h"
#include "util/rng.h"

namespace twig::data {

namespace {

using tree::NodeId;
using tree::Tree;

/// Tree builder that tracks the approximate serialized XML size as it
/// goes, so generators can stop at a byte target.
class SizedBuilder {
 public:
  NodeId Root(std::string_view tag) {
    bytes_ += 2 * tag.size() + 5;
    return tree_.AddRoot(tag);
  }
  NodeId Elem(NodeId parent, std::string_view tag) {
    bytes_ += 2 * tag.size() + 5;
    return tree_.AddElement(parent, tag);
  }
  void Value(NodeId parent, std::string_view value) {
    bytes_ += value.size();
    tree_.AddValue(parent, value);
  }
  /// Element with a single value child: <tag>value</tag>.
  void Field(NodeId parent, std::string_view tag, std::string_view value) {
    Value(Elem(parent, tag), value);
  }

  size_t bytes() const { return bytes_; }
  Tree Take() { return std::move(tree_); }

 private:
  Tree tree_;
  size_t bytes_ = 0;
};

std::string NumberString(Rng& rng, int lo, int hi) {
  return std::to_string(rng.UniformInt(lo, hi));
}

std::string PagesString(Rng& rng) {
  const int start = static_cast<int>(rng.UniformInt(1, 800));
  return std::to_string(start) + "-" +
         std::to_string(start + static_cast<int>(rng.UniformInt(4, 30)));
}

std::string Capitalize(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

/// A research community: the unit of correlation. Real bibliographic
/// data is strongly correlated — an author publishes in a few venues,
/// in a bounded span of years, on a recurring set of topics, with
/// recurring co-authors. Records are generated *per community*, which
/// is what makes sibling subpaths (author <-> journal <-> year <->
/// title words) statistically dependent, the effect set hashing is
/// designed to capture (paper Section 3, problem 2).
struct Community {
  std::vector<size_t> authors;     // ranks into the surname vocabulary
  std::vector<size_t> journals;    // ranks into the journal vocabulary
  std::vector<size_t> conferences; // ranks into the conference vocabulary
  std::vector<size_t> topics;      // ranks into the title-word vocabulary
  int year_lo = 1970;
  int year_hi = 2000;
};

/// Draws `count` distinct ranks in [0, n).
std::vector<size_t> DrawRanks(Rng& rng, size_t n, size_t count) {
  std::vector<size_t> out;
  while (out.size() < count && out.size() < n) {
    const size_t r = rng.Uniform(n);
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  return out;
}

std::vector<Community> MakeCommunities(Rng& rng, size_t count,
                                       size_t author_vocab,
                                       size_t journal_vocab,
                                       size_t conference_vocab,
                                       size_t title_vocab) {
  std::vector<Community> communities(count);
  for (auto& c : communities) {
    c.authors = DrawRanks(rng, author_vocab,
                          8 + rng.Uniform(std::max<size_t>(author_vocab / count, 9)));
    c.journals = DrawRanks(rng, journal_vocab, 2 + rng.Uniform(2));
    c.conferences = DrawRanks(rng, conference_vocab, 2 + rng.Uniform(2));
    c.topics = DrawRanks(rng, title_vocab,
                         12 + rng.Uniform(std::max<size_t>(title_vocab / count, 13)));
    c.year_lo = 1970 + static_cast<int>(rng.Uniform(22));
    c.year_hi = std::min(2000, c.year_lo + 4 + static_cast<int>(rng.Uniform(6)));
  }
  return communities;
}

/// Zipf-samples a rank from a community's member list.
size_t PickMember(Rng& rng, const ZipfSampler& skew,
                  const std::vector<size_t>& members) {
  return members[skew.Sample(rng) % members.size()];
}

std::string TitleFromTopics(Rng& rng, const Vocabulary& words,
                            const ZipfSampler& skew,
                            const std::vector<size_t>& topics, int min_words,
                            int max_words) {
  const int n = static_cast<int>(rng.UniformInt(min_words, max_words));
  std::string title;
  for (int i = 0; i < n; ++i) {
    if (i > 0) title += ' ';
    title += words.At(PickMember(rng, skew, topics));
  }
  return Capitalize(std::move(title));
}

}  // namespace

Tree GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  // Vocabulary sizes scale sublinearly with the corpus so value
  // frequencies grow with data size (as in real bibliographies).
  const size_t scale = std::max<size_t>(options.target_bytes / 1024, 64);
  const size_t author_vocab =
      options.author_vocab ? options.author_vocab
                           : std::clamp<size_t>(scale / 6, 256, 4096);
  const size_t title_vocab =
      options.title_vocab ? options.title_vocab
                          : std::clamp<size_t>(scale / 8, 192, 3072);
  const size_t journal_vocab = 96;
  const size_t conference_vocab = 64;

  Vocabulary first_names(120, options.zipf_theta, WordStyle::kCapitalized,
                         rng);
  Vocabulary surnames(author_vocab, options.zipf_theta,
                      WordStyle::kCapitalized, rng);
  Vocabulary title_words(title_vocab, options.zipf_theta,
                         WordStyle::kLowercase, rng);
  Vocabulary journals(journal_vocab, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary conferences(conference_vocab, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary publishers(32, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary schools(48, 0.7, WordStyle::kCapitalized, rng);

  const size_t community_count = std::clamp<size_t>(scale / 96, 8, 96);
  std::vector<Community> communities =
      MakeCommunities(rng, community_count, author_vocab, journal_vocab,
                      conference_vocab, title_vocab);
  ZipfSampler community_skew(community_count, 0.8);
  ZipfSampler member_skew(64, 1.0);
  ZipfSampler author_count_skew(5, 1.1);  // most records have few authors

  SizedBuilder b;
  const NodeId root = b.Root("dblp");
  while (b.bytes() < options.target_bytes) {
    const Community& com = communities[community_skew.Sample(rng)];
    const double kind = rng.NextDouble();
    const char* tag = kind < 0.55   ? "article"
                      : kind < 0.85 ? "inproceedings"
                      : kind < 0.95 ? "book"
                                    : "phdthesis";
    const NodeId record = b.Elem(root, tag);

    // Authors: 1-5 community members — duplicate sibling labels (the
    // multiset case) with correlated values (co-authors cluster).
    const int author_count =
        1 + static_cast<int>(author_count_skew.Sample(rng));
    for (int a = 0; a < author_count; ++a) {
      b.Field(record, "author",
              first_names.Sample(rng) + " " +
                  surnames.At(PickMember(rng, member_skew, com.authors)));
    }
    b.Field(record, "title",
            TitleFromTopics(rng, title_words, member_skew, com.topics, 3, 8));
    b.Field(record, "year",
            std::to_string(rng.UniformInt(com.year_lo, com.year_hi)));

    if (kind < 0.55) {  // article
      b.Field(record, "journal",
              "Journal of " +
                  journals.At(PickMember(rng, member_skew, com.journals)));
      b.Field(record, "volume", NumberString(rng, 1, 40));
      b.Field(record, "pages", PagesString(rng));
    } else if (kind < 0.85) {  // inproceedings
      b.Field(record, "booktitle",
              "Proc " +
                  conferences.At(PickMember(rng, member_skew, com.conferences)) +
                  " Conference");
      b.Field(record, "pages", PagesString(rng));
    } else if (kind < 0.95) {  // book
      b.Field(record, "publisher", publishers.Sample(rng) + " Press");
      b.Field(record, "isbn", NumberString(rng, 100000000, 999999999));
    } else {  // phdthesis
      b.Field(record, "school", schools.Sample(rng) + " University");
    }
    if (rng.Bernoulli(0.25)) {
      // Structured citations: note that "year" and "title" recur here
      // in a second context, as they do in real bibliographic XML —
      // this is what makes suffix subpaths strictly more frequent than
      // their root-anchored chains, so parses can fragment at interior
      // branch nodes (where MSH and MOSH diverge).
      const int cites = static_cast<int>(rng.UniformInt(1, 3));
      for (int c = 0; c < cites; ++c) {
        const NodeId cite = b.Elem(record, "cite");
        b.Field(cite, "label",
                "ref/" +
                    title_words.At(PickMember(rng, member_skew, com.topics)) +
                    "/" + NumberString(rng, 70, 99));
        b.Field(cite, "title",
                TitleFromTopics(rng, title_words, member_skew, com.topics, 2,
                                4));
        b.Field(cite, "year",
                std::to_string(rng.UniformInt(com.year_lo - 5, com.year_hi)));
      }
    }
  }
  return b.Take();
}

Tree GenerateSwissProt(const SwissProtOptions& options) {
  Rng rng(options.seed);
  const size_t scale = std::max<size_t>(options.target_bytes / 1024, 64);

  Vocabulary first_names(96, options.zipf_theta, WordStyle::kCapitalized, rng);
  Vocabulary surnames(std::clamp<size_t>(scale / 6, 192, 2048),
                      options.zipf_theta, WordStyle::kCapitalized, rng);
  Vocabulary proteins(std::clamp<size_t>(scale / 8, 128, 1536),
                      options.zipf_theta, WordStyle::kCapitalized, rng);
  Vocabulary organisms(128, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary taxa(96, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary journals(72, 0.7, WordStyle::kCapitalized, rng);
  Vocabulary keywords(160, 0.9, WordStyle::kLowercase, rng);
  Vocabulary feature_types(24, 0.8, WordStyle::kLowercase, rng);
  Vocabulary title_words(std::clamp<size_t>(scale / 8, 128, 1536),
                         options.zipf_theta, WordStyle::kLowercase, rng);
  static const char kAmino[] = "ACDEFGHIKLMNPQRSTVWY";

  // Organism families: each organism has a fixed lineage (as in real
  // taxonomies) and correlated keywords, proteins, and labs (authors /
  // journals) studying it.
  struct Family {
    size_t organism;
    std::vector<size_t> lineage;    // taxa ranks, root-of-tree first
    std::vector<size_t> proteins;   // protein-name ranks
    std::vector<size_t> keywords;   // keyword ranks
    std::vector<size_t> topics;     // title-word ranks
    std::vector<size_t> authors;    // surname ranks
    std::vector<size_t> journals;   // journal ranks
  };
  const size_t family_count = std::clamp<size_t>(scale / 48, 8, 64);
  std::vector<Family> families(family_count);
  for (size_t f = 0; f < family_count; ++f) {
    Family& fam = families[f];
    fam.organism = f % organisms.size();
    const size_t depth = 3 + rng.Uniform(4);
    fam.lineage = DrawRanks(rng, taxa.size(), depth);
    fam.proteins = DrawRanks(rng, proteins.size(),
                             4 + rng.Uniform(std::max<size_t>(proteins.size() / family_count, 5)));
    fam.keywords = DrawRanks(rng, keywords.size(), 3 + rng.Uniform(5));
    fam.topics = DrawRanks(rng, title_words.size(),
                           8 + rng.Uniform(std::max<size_t>(
                                   title_words.size() / family_count, 9)));
    fam.authors = DrawRanks(rng, surnames.size(),
                            6 + rng.Uniform(std::max<size_t>(surnames.size() / family_count, 7)));
    fam.journals = DrawRanks(rng, journals.size(), 2 + rng.Uniform(2));
  }
  ZipfSampler family_skew(family_count, 0.8);
  ZipfSampler member_skew(64, 1.0);

  SizedBuilder b;
  const NodeId root = b.Root("sptr");
  while (b.bytes() < options.target_bytes) {
    const Family& fam = families[family_skew.Sample(rng)];
    const NodeId entry = b.Elem(root, "entry");
    b.Field(entry, "accession", "P" + NumberString(rng, 10000, 99999));
    const NodeId protein = b.Elem(entry, "protein");
    b.Field(protein, "name",
            proteins.At(PickMember(rng, member_skew, fam.proteins)) +
                " precursor");
    b.Field(protein, "evidence", NumberString(rng, 1, 5));

    const NodeId organism = b.Elem(entry, "organism");
    b.Field(organism, "name", organisms.At(fam.organism) + " " +
                                  taxa.At(fam.lineage.back()));
    const NodeId lineage = b.Elem(organism, "lineage");
    for (size_t t : fam.lineage) {
      b.Field(lineage, "taxon", taxa.At(t));
    }

    const int refs = static_cast<int>(rng.UniformInt(1, 4));
    for (int r = 0; r < refs; ++r) {
      const NodeId reference = b.Elem(entry, "reference");
      const NodeId author_list = b.Elem(reference, "authorList");
      const int nauth = static_cast<int>(rng.UniformInt(1, 6));
      for (int a = 0; a < nauth; ++a) {
        b.Field(author_list, "person",
                first_names.Sample(rng) + " " +
                    surnames.At(PickMember(rng, member_skew, fam.authors)));
      }
      const NodeId citation = b.Elem(reference, "citation");
      b.Field(citation, "title",
              TitleFromTopics(rng, title_words, member_skew, fam.topics, 4,
                              8));
      b.Field(citation, "journal",
              journals.At(PickMember(rng, member_skew, fam.journals)) +
                  " Journal");
      b.Field(citation, "year", NumberString(rng, 1975, 2000));
    }

    const int features = static_cast<int>(rng.UniformInt(0, 6));
    for (int f = 0; f < features; ++f) {
      const NodeId feature = b.Elem(entry, "feature");
      b.Field(feature, "type", feature_types.Sample(rng));
      const NodeId location = b.Elem(feature, "location");
      const int begin = static_cast<int>(rng.UniformInt(1, 400));
      b.Field(location, "begin", std::to_string(begin));
      b.Field(location, "end",
              std::to_string(begin + static_cast<int>(rng.UniformInt(1, 60))));
      if (rng.Bernoulli(0.5)) {
        b.Field(feature, "description",
                TitleFromTopics(rng, title_words, member_skew, fam.topics, 2,
                                5));
      }
    }

    const int nkey = static_cast<int>(rng.UniformInt(1, 5));
    for (int k = 0; k < nkey; ++k) {
      b.Field(entry, "keyword",
              keywords.At(PickMember(rng, member_skew, fam.keywords)));
    }

    const NodeId sequence = b.Elem(entry, "sequence");
    const int seq_len = static_cast<int>(rng.UniformInt(30, 80));
    std::string seq;
    seq.reserve(seq_len);
    for (int i = 0; i < seq_len; ++i) {
      seq += kAmino[rng.Uniform(sizeof(kAmino) - 1)];
    }
    b.Value(sequence, seq);
    b.Field(entry, "length", std::to_string(seq_len));
  }
  return b.Take();
}

}  // namespace twig::data
