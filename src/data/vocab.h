// Synthetic vocabularies for data generation.
//
// The estimators' behaviour depends on leaf-string statistics: skewed
// frequencies (some authors/words are very common) and a realistic
// substring structure (short prefixes shared by many words). We
// generate words syllabically — pronounceable, with heavy prefix
// sharing — and sample them with a Zipf distribution.

#ifndef TWIG_DATA_VOCAB_H_
#define TWIG_DATA_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace twig::data {

/// Shape of generated words.
enum class WordStyle {
  kLowercase,    // title words: "stora", "belin"
  kCapitalized,  // names: "Mantoro", "Kelsen"
};

/// A fixed set of generated words sampled under a Zipf distribution.
class Vocabulary {
 public:
  /// Generates `size` distinct words with `style`, Zipf exponent
  /// `theta` (0 = uniform), seeded deterministically from `rng`.
  Vocabulary(size_t size, double theta, WordStyle style, Rng& rng);

  /// Draws a word (Zipf-distributed rank).
  const std::string& Sample(Rng& rng) const {
    return words_[zipf_.Sample(rng)];
  }

  /// Word at a given rank (0 = most frequent).
  const std::string& At(size_t rank) const { return words_[rank]; }

  size_t size() const { return words_.size(); }

 private:
  std::vector<std::string> words_;
  ZipfSampler zipf_;
};

/// One pronounceable word of `syllables` syllables.
std::string MakeWord(Rng& rng, int syllables, WordStyle style);

}  // namespace twig::data

#endif  // TWIG_DATA_VOCAB_H_
