// Synthetic XML data sets standing in for the paper's DBLP and
// SWISS-PROT corpora (see DESIGN.md, "Substitutions").
//
// The generators reproduce the statistics the estimators are sensitive
// to:
//   * DBLP-like  — a shallow, very wide tree: one <dblp> root with many
//     bibliographic records whose children (author+, title, year, ...)
//     are strongly correlated and contain duplicate sibling labels
//     (the multiset problem). Leaf values come from Zipf-skewed
//     vocabularies.
//   * SWISS-PROT-like — a deeper, structurally richer tree (nested
//     references, features, organism lineages; ~2x the distinct tags
//     and subpath diversity per MB), the paper's "more complex
//     structure needs more summary space" contrast.
//
// Generation is deterministic in the options' seed; the target size is
// in serialized-XML bytes (the denominator of the paper's space
// percentages).

#ifndef TWIG_DATA_GENERATORS_H_
#define TWIG_DATA_GENERATORS_H_

#include <cstdint>

#include "tree/tree.h"

namespace twig::data {

/// Options for the DBLP-like generator.
struct DblpOptions {
  /// Approximate serialized size to generate.
  size_t target_bytes = 4 * 1024 * 1024;
  uint64_t seed = 42;
  /// Zipf exponent for value vocabularies (0 = uniform draws). Real
  /// name/word frequencies are close to theta = 1.
  double zipf_theta = 1.0;
  /// Vocabulary sizes; 0 = scale with target_bytes.
  size_t author_vocab = 0;
  size_t title_vocab = 0;
};

/// Generates a DBLP-like bibliography tree.
tree::Tree GenerateDblp(const DblpOptions& options = {});

/// Options for the SWISS-PROT-like generator.
struct SwissProtOptions {
  size_t target_bytes = 1536 * 1024;
  uint64_t seed = 1905;
  double zipf_theta = 1.0;
};

/// Generates a SWISS-PROT-like protein annotation tree.
tree::Tree GenerateSwissProt(const SwissProtOptions& options = {});

}  // namespace twig::data

#endif  // TWIG_DATA_GENERATORS_H_
