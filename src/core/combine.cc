#include "core/combine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace twig::core {

double ResolveMissingCount(const cst::CstView& cst, double requested) {
  if (requested > 0) return requested;
  return std::max(0.5, 0.5 * static_cast<double>(cst.prune_threshold()));
}

Combiner::Combiner(const ExpandedQuery& eq, const cst::CstView& cst,
                   const CombineOptions& options)
    : eq_(eq), cst_(cst), options_(options) {
  n_ = std::max<double>(1.0, static_cast<double>(cst.data_node_count()));
  options_.missing_count = ResolveMissingCount(cst, options_.missing_count);
}

Combiner::~Combiner() {
  if (tally_lookups_ == 0 && tally_fallbacks_ == 0) return;
  auto& registry = obs::MetricsRegistry::Get();
  registry.Add(obs::Counter::kCstSubpathLookups, tally_lookups_);
  if (tally_hits_ > 0) {
    registry.Add(obs::Counter::kCstSubpathHits, tally_hits_);
  }
  if (tally_misses_ > 0) {
    registry.Add(obs::Counter::kCstSubpathMisses, tally_misses_);
  }
  if (tally_fallbacks_ > 0) {
    registry.Add(obs::Counter::kTwigletMoFallbacks, tally_fallbacks_);
  }
}

cst::CstNodeId Combiner::LookupAtoms(const AtomSeq& seq) const {
  ++tally_lookups_;
  cst::CstNodeId node = cst_.root();
  for (AtomId a : seq) {
    const suffix::Symbol symbol = eq_.atoms[a].symbol;
    if (symbol != cst::CstView::kUnknownSymbol) {
      node = cst_.Step(node, symbol);
    } else {
      node = cst::kNoCstNode;
    }
    if (node == cst::kNoCstNode) {
      ++tally_misses_;
      return cst::kNoCstNode;
    }
  }
  ++tally_hits_;
  return node;
}

SubpathLookup Combiner::LookupSubpath(const AtomSeq& seq) const {
  SubpathLookup out;
  if (!NeedsFrontier(eq_, seq.data(), seq.size())) {
    const cst::CstNodeId node = LookupAtoms(seq);
    if (node == cst::kNoCstNode) return out;
    out.matched = true;
    out.node = node;
    out.agg_nodes = 1;
    out.presence = cst_.PresenceCount(node);
    out.occurrence = cst_.OccurrenceCount(node);
    return out;
  }
  ++tally_lookups_;
  const FrontierMatch fm =
      ResolveAtomFrontier(eq_, cst_, seq.data(), seq.size());
  if (fm.truncated) {
    ++tally_misses_;
    Fail(Status::InvalidArgument(
        "wildcard/descendant aggregation budget exceeded for subpath " +
        RenderAtomSeq(eq_, cst_.labels(), seq)));
    return out;
  }
  if (fm.matched < seq.size() || fm.nodes.empty()) {
    ++tally_misses_;
    return out;
  }
  ++tally_hits_;
  out.matched = true;
  out.agg_nodes = static_cast<uint32_t>(fm.nodes.size());
  if (out.agg_nodes == 1) out.node = fm.nodes.front();
  // Each frontier node is a distinct label path, so the instance sets
  // are disjoint and occurrence sums are exact; the presence sum is an
  // upper bound (one data node can root several of the paths).
  for (const cst::CstNodeId node : fm.nodes) {
    out.presence += cst_.PresenceCount(node);
    out.occurrence += cst_.OccurrenceCount(node);
  }
  return out;
}

void Combiner::TraceSubpath(const AtomSeq& seq, const SubpathLookup& lookup,
                            double count_used) const {
  if (current_piece_ == nullptr) return;
  obs::SubpathTrace sp;
  if (!lookup.matched) {
    sp.subpath = RenderAtomSeq(eq_, cst_.labels(), seq);
  } else {
    // Aggregated lookups have no single CST subpath to describe;
    // render the query side instead.
    sp.subpath = lookup.agg_nodes == 1
                     ? cst_.DescribeSubpath(lookup.node)
                     : RenderAtomSeq(eq_, cst_.labels(), seq);
    sp.hit = true;
    sp.presence = lookup.presence;
    sp.occurrence = lookup.occurrence;
    sp.aggregated = lookup.agg_nodes;
  }
  sp.count = count_used;
  current_piece_->subpaths.push_back(std::move(sp));
}

double Combiner::SubpathsCount(const SubpathList& subpaths) const {
  assert(!subpaths.empty());
  if (subpaths.size() == 1) {
    const SubpathLookup lookup = LookupSubpath(subpaths[0]);
    if (!lookup.matched) {
      TraceSubpath(subpaths[0], lookup, options_.missing_count);
      return options_.missing_count;
    }
    const double count = CountOfLookup(lookup);
    TraceSubpath(subpaths[0], lookup, count);
    return count;
  }

  // A twiglet is a *tree* of subpaths from a shared root. Intersecting
  // the root-level sets alone would lose all interior sharing: with
  // multiset fan-out (e.g. dblp -> thousands of articles) two branches
  // that must pass through the *same* article node would be treated as
  // picking articles independently, overestimating wildly. So:
  //   1. subpaths sharing their first edge form a *group*; the group's
  //      joint count is estimated recursively at its deepest shared
  //      (LCP) node w and extended along the prefix chain:
  //        count(prefix ∘ branches) =
  //            count(prefix) * count_w(branches) / count(w);
  //   2. the groups (now starting on distinct first edges, i.e. truly
  //      diverging at the root) are intersected via set hashing on
  //      their LCP-prefix signatures, with the Section 5 occurrence
  //      scaling per group.
  struct Group {
    AtomSeq prefix;              // root .. LCP node (CST-resolvable)
    SubpathLookup lookup;        // resolved prefix (counts, node)
    double multiplicity = 1.0;   // expected instances per rooting node
    double presence_factor = 1.0;  // presence-mode damping (<= 1)
  };
  util::SmallVector<Group, 4> groups;
  {
    // Partition by first edge, preserving order. Length-1 subpaths
    // (the bare root) are implied by any other subpath; drop them.
    util::SmallVector<util::SmallVector<const AtomSeq*, 4>, 4> parts;
    AtomSeq part_keys;
    for (const auto& sp : subpaths) {
      if (sp.size() < 2) continue;
      const AtomId key = sp[1];
      size_t p = 0;
      while (p < part_keys.size() && part_keys[p] != key) ++p;
      if (p == part_keys.size()) {
        part_keys.push_back(key);
        parts.emplace_back();
      }
      parts[p].push_back(&sp);
    }
    if (parts.empty()) {
      const SubpathLookup lookup = LookupSubpath(subpaths[0]);
      return lookup.matched ? CountOfLookup(lookup) : options_.missing_count;
    }

    for (const auto& part : parts) {
      Group group;
      // LCP within the part.
      size_t lcp = 1;
      while (true) {
        bool all_share = true;
        for (const auto* sp : part) {
          if (sp->size() <= lcp || (*sp)[lcp] != (*part[0])[lcp]) {
            all_share = false;
            break;
          }
        }
        if (!all_share) break;
        ++lcp;
      }
      group.prefix.assign(part[0]->begin(), part[0]->begin() + lcp);
      group.lookup = LookupSubpath(group.prefix);
      if (!group.lookup.matched) {
        TraceSubpath(group.prefix, group.lookup, options_.missing_count);
        return options_.missing_count;
      }
      const double prefix_cp = std::max(group.lookup.presence, 1.0);
      const double prefix_co = group.lookup.occurrence;
      group.multiplicity = prefix_co / prefix_cp;
      if (part.size() >= 2) {
        // Joint branch structure below the LCP node w.
        SubpathList branches;
        for (const auto* sp : part) {
          branches.emplace_back(sp->begin() + (lcp - 1), sp->end());
        }
        const double branch_count = SubpathsCount(branches);
        AtomSeq w_seq;
        w_seq.push_back((*part[0])[lcp - 1]);
        const SubpathLookup w_lookup = LookupSubpath(w_seq);
        const double w_count =
            w_lookup.matched ? std::max(w_lookup.presence, 1.0) : 1.0;
        group.multiplicity *= branch_count / w_count;
        group.presence_factor = std::min(1.0, group.multiplicity);
      }
      groups.push_back(std::move(group));
    }
  }

  if (groups.size() == 1) {
    // All subpaths share their first edge: pure prefix extension.
    const Group& g = groups[0];
    const double cp = g.lookup.presence;
    TraceSubpath(g.prefix, g.lookup, CountOfLookup(g.lookup));
    if (options_.semantics == CountSemantics::kOccurrence) {
      return cp * g.multiplicity;
    }
    return cp * g.presence_factor;
  }

  // Intersect the groups' rooting sets via set hashing. A paged
  // summary copies each signature into caller-provided scratch (the
  // backing page may be evicted before EstimateIntersectionSize runs),
  // so `sized` points into `sig_scratch`, one stable slot per group.
  util::SmallVector<sethash::SizedSignature, 4> sized;
  std::vector<sethash::Signature> sig_scratch(groups.size());
  size_t group_index = 0;
  double fallback_min = -1.0;
  SubpathList representatives;
  util::SmallVector<double, 4> multiplicities;
  double presence_damp = 1.0;
  obs::IntersectionTrace* ix = nullptr;
  if (current_piece_ != nullptr) {
    current_piece_->intersections.emplace_back();
    ix = &current_piece_->intersections.back();
  }
  for (const Group& group : groups) {
    const double cp = group.lookup.presence;
    if (cp <= 0) return 0.0;
    // Aggregated prefixes have no single rooting-set signature; they
    // join the signature-less fallback path (min of presences).
    const sethash::Signature* sig =
        group.lookup.agg_nodes == 1
            ? cst_.GetSignature(group.lookup.node,
                                &sig_scratch[group_index])
            : nullptr;
    ++group_index;
    if (sig == nullptr) {
      fallback_min = fallback_min < 0 ? cp : std::min(fallback_min, cp);
    } else {
      sized.push_back({sig, cp});
    }
    if (ix != nullptr) {
      ix->inputs.push_back(group.lookup.agg_nodes == 1
                               ? cst_.DescribeSubpath(group.lookup.node)
                               : RenderAtomSeq(eq_, cst_.labels(),
                                               group.prefix));
      ix->input_sizes.push_back(cp);
    }
    TraceSubpath(group.prefix, group.lookup, CountOfLookup(group.lookup));
    representatives.push_back(group.prefix);
    multiplicities.push_back(group.multiplicity);
    presence_damp *= group.presence_factor;
  }
  if (ix != nullptr) ix->signatures = sized.size();
  const double occ_scale = OccurrenceScale(representatives, multiplicities);
  double presence;
  if (sized.size() >= 2) {
    const sethash::IntersectionEstimate estimate =
        sethash::EstimateIntersectionSize(sized);
    if (ix != nullptr) {
      ix->matching_components = estimate.matching_components;
      ix->resemblance = estimate.resemblance;
    }
    if (estimate.matching_components < kMinSignatureSupport ||
        estimate.size <= 0) {
      // The intersection is below the signatures' resolution: the
      // estimate would be pure quantization noise (or zero). Degrade
      // to the pure-MO conditioning estimate of the twiglet.
      if (ix != nullptr) ix->fallback = true;
      return TwigletMoFallback(subpaths);
    }
    presence = estimate.size;
    if (fallback_min >= 0) presence = std::min(presence, fallback_min);
    if (ix != nullptr) ix->estimate = presence;
  } else {
    // No usable signatures: degrade to pure-MO conditioning.
    if (ix != nullptr) ix->fallback = true;
    return TwigletMoFallback(subpaths);
  }
  if (options_.semantics == CountSemantics::kOccurrence) {
    // Section 5: occurrences-per-presence uniformity assumption,
    // applied per group.
    return presence * occ_scale;
  }
  return presence * presence_damp;
}

double Combiner::OccurrenceScale(
    const SubpathList& subpaths,
    const util::SmallVector<double, 4>& multiplicities) const {
  if (!options_.duplicate_aware_occurrence) {
    double scale = 1.0;
    for (double m : multiplicities) scale *= m;
    return scale;
  }
  // Section 5's uniformity product, corrected for duplicate and
  // prefix-nested subpaths: when one subpath's symbol sequence is a
  // prefix of (or equal to) another's, any child instance satisfying
  // the more specific branch also satisfies the general one, but the
  // 1-1 mapping must use *distinct* children — so each more-specific
  // branch consumes one unit of the general branch's multiplicity
  // (falling factorial instead of a plain power).
  const size_t k = subpaths.size();
  util::SmallVector<size_t, 8> order;
  order.resize(k);
  for (size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return subpaths[a].size() > subpaths[b].size();
  });
  // True when every child satisfying `longer` also satisfies
  // `shorter`: position-wise, the shorter atom must generalize the
  // longer one — same symbol, or a wildcard, and (positionally) a
  // descendant edge generalizes a child edge.
  auto symbols_prefix_of = [&](const AtomSeq& shorter,
                               const AtomSeq& longer) {
    if (shorter.size() > longer.size()) return false;
    for (size_t i = 0; i < shorter.size(); ++i) {
      const ExpandedQuery::Atom& s = eq_.atoms[shorter[i]];
      const ExpandedQuery::Atom& l = eq_.atoms[longer[i]];
      if (!s.wildcard && (l.wildcard || s.symbol != l.symbol)) return false;
      if (i > 0 && s.edge != l.edge &&
          s.edge != query::EdgeKind::kDescendant) {
        return false;
      }
    }
    return true;
  };
  double scale = 1.0;
  for (size_t pos = 0; pos < k; ++pos) {
    const size_t i = order[pos];
    size_t consumed = 0;
    for (size_t prev = 0; prev < pos; ++prev) {
      const size_t j = order[prev];
      if (symbols_prefix_of(subpaths[i], subpaths[j])) ++consumed;
    }
    scale *= std::max(multiplicities[i] - static_cast<double>(consumed), 0.1);
  }
  return scale;
}

double Combiner::TwigletMoFallback(const SubpathList& subpaths) const {
  ++tally_fallbacks_;
  std::vector<EstimandPiece> pieces;
  pieces.reserve(subpaths.size());
  for (const auto& sp : subpaths) {
    EstimandPiece piece;
    piece.root_atom = sp.front();
    piece.atoms = sp;
    piece.subpaths.push_back(sp);
    pieces.push_back(std::move(piece));
  }
  return MoCombine(std::move(pieces));
}

double Combiner::PieceCount(const EstimandPiece& piece) const {
  if (piece.missing) {
    if (!piece.subpaths.empty()) {
      TraceSubpath(piece.subpaths[0], SubpathLookup{},
                   options_.missing_count);
    }
    return options_.missing_count;
  }
  return SubpathsCount(piece.subpaths);
}

double Combiner::AtomSetProb(const AtomSeq& atoms) const {
  if (atoms.empty()) return 1.0;
  // Split into connected components (an atom joins its parent's
  // component when the parent is in the set). `atoms` is sorted, and
  // parents precede children in atom numbering (preorder), so one pass
  // suffices.
  util::SmallVector<int, 12> comp;
  comp.resize(atoms.size());
  AtomSeq roots;
  for (size_t i = 0; i < atoms.size(); ++i) {
    const AtomId parent = eq_.atoms[atoms[i]].parent;
    const auto it =
        std::lower_bound(atoms.begin(), atoms.begin() + i, parent);
    if (parent >= 0 && it != atoms.begin() + i && *it == parent) {
      comp[i] = comp[it - atoms.begin()];
    } else {
      comp[i] = static_cast<int>(roots.size());
      roots.push_back(atoms[i]);
    }
  }
  // Extract each component's root-anchored subpaths: a leaf (atom with
  // no child in the set) terminates one subpath; walk up to the root.
  util::SmallVector<unsigned char, 12> has_child_in_set;
  has_child_in_set.resize(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const AtomId parent = eq_.atoms[atoms[i]].parent;
    const auto it =
        std::lower_bound(atoms.begin(), atoms.begin() + i, parent);
    if (parent >= 0 && it != atoms.begin() + i && *it == parent) {
      has_child_in_set[it - atoms.begin()] = 1;
    }
  }
  util::SmallVector<SubpathList, 4> comp_subpaths;
  comp_subpaths.resize(roots.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (has_child_in_set[i]) continue;
    // Leaf of the set: collect the chain up to its component root.
    AtomSeq chain;
    AtomId a = atoms[i];
    while (true) {
      chain.push_back(a);
      if (a == roots[comp[i]]) break;
      a = eq_.atoms[a].parent;
    }
    std::reverse(chain.begin(), chain.end());
    comp_subpaths[comp[i]].push_back(std::move(chain));
  }
  double prob = 1.0;
  for (auto& subpaths : comp_subpaths) {
    prob *= SubpathsCount(subpaths) / n_;
  }
  return prob;
}

double Combiner::MoCombine(std::vector<EstimandPiece> pieces) const {
  // Root-shallowest first; among equal roots, larger pieces first so
  // later ones condition on them.
  std::sort(pieces.begin(), pieces.end(),
            [&](const EstimandPiece& a, const EstimandPiece& b) {
              const uint32_t da = eq_.atoms[a.root_atom].depth;
              const uint32_t db = eq_.atoms[b.root_atom].depth;
              if (da != db) return da < db;
              if (a.root_atom != b.root_atom) return a.root_atom < b.root_atom;
              return a.atoms.size() > b.atoms.size();
            });

  // Terms are traced only for the query's own combination, not for the
  // recursive pure-MO twiglet fallbacks.
  ++combine_depth_;
  obs::Trace* const trace =
      combine_depth_ == 1 ? options_.trace : nullptr;

  util::SmallVector<unsigned char, 32> covered;
  covered.resize(eq_.atoms.size());
  double estimate = n_;
  for (const EstimandPiece& piece : pieces) {
    size_t piece_index = 0;
    if (trace != nullptr) {
      obs::PieceTrace pt;
      pt.label = DescribePiece(eq_, cst_.labels(), piece);
      pt.num_subpaths = piece.subpaths.size();
      pt.missing = piece.missing;
      trace->pieces.push_back(std::move(pt));
      piece_index = trace->pieces.size() - 1;
    }
    AtomSeq overlap;
    for (AtomId a : piece.atoms) {
      if (covered[a]) overlap.push_back(a);
    }
    if (overlap.size() == piece.atoms.size()) {  // fully covered
      if (trace != nullptr) {
        obs::CombineTermTrace term;
        term.piece = piece_index;
        term.skipped = true;
        term.running_estimate = estimate;
        trace->terms.push_back(std::move(term));
      }
      continue;
    }
    if (trace != nullptr) current_piece_ = &trace->pieces[piece_index];
    const double count = PieceCount(piece);
    if (trace != nullptr) {
      trace->pieces[piece_index].count = count;
      current_piece_ = nullptr;
    }
    estimate *= count / n_;
    double overlap_prob = 1.0;
    if (!overlap.empty()) {
      overlap_prob = AtomSetProb(overlap);
      estimate /= std::max(overlap_prob, 1e-12);
    }
    if (trace != nullptr) {
      obs::CombineTermTrace term;
      term.piece = piece_index;
      term.piece_prob = count / n_;
      if (!overlap.empty()) {
        term.overlap = RenderAtomSet(eq_, cst_.labels(), overlap);
        term.overlap_prob = overlap_prob;
      }
      term.running_estimate = estimate;
      trace->terms.push_back(std::move(term));
    }
    for (AtomId a : piece.atoms) covered[a] = 1;
    if (estimate <= 0) {
      estimate = 0.0;
      break;
    }
  }
  --combine_depth_;
  return estimate;
}

double Combiner::IndependenceCombine(
    const std::vector<EstimandPiece>& pieces) const {
  ++combine_depth_;
  obs::Trace* const trace =
      combine_depth_ == 1 ? options_.trace : nullptr;
  double estimate = n_;
  for (const EstimandPiece& piece : pieces) {
    size_t piece_index = 0;
    if (trace != nullptr) {
      obs::PieceTrace pt;
      pt.label = DescribePiece(eq_, cst_.labels(), piece);
      pt.num_subpaths = piece.subpaths.size();
      pt.missing = piece.missing;
      trace->pieces.push_back(std::move(pt));
      piece_index = trace->pieces.size() - 1;
      current_piece_ = &trace->pieces[piece_index];
    }
    const double count = PieceCount(piece);
    estimate *= count / n_;
    if (trace != nullptr) {
      trace->pieces[piece_index].count = count;
      current_piece_ = nullptr;
      obs::CombineTermTrace term;
      term.piece = piece_index;
      term.piece_prob = count / n_;
      term.running_estimate = estimate;
      trace->terms.push_back(std::move(term));
    }
  }
  --combine_depth_;
  return std::max(estimate, 0.0);
}

}  // namespace twig::core
