#include "core/expanded_query.h"

#include <algorithm>

namespace twig::core {

using query::Twig;
using query::TwigNodeId;

ExpandedQuery ExpandQuery(const Twig& twig, const cst::Cst& cst) {
  ExpandedQuery eq;
  if (twig.empty()) return eq;

  // Expand in preorder; record each twig node's atom (for elements) or
  // last char atom (for values) so children can link to parents.
  auto add_atom = [&](suffix::Symbol symbol, AtomId parent,
                      bool is_tag) -> AtomId {
    ExpandedQuery::Atom atom;
    atom.symbol = symbol;
    atom.parent = parent;
    atom.depth = parent < 0 ? 0 : eq.atoms[parent].depth + 1;
    atom.is_tag = is_tag;
    AtomId id = static_cast<AtomId>(eq.atoms.size());
    eq.atoms.push_back(std::move(atom));
    if (parent >= 0) eq.atoms[parent].children.push_back(id);
    return id;
  };

  auto expand = [&](auto&& self, TwigNodeId n, AtomId parent) -> void {
    if (twig.IsValue(n)) {
      const std::string_view value = twig.Value(n);
      const size_t take = std::min(value.size(), cst.max_value_chars());
      AtomId prev = parent;
      for (size_t i = 0; i < take; ++i) {
        prev = add_atom(suffix::CharSymbol(value[i]), prev, /*is_tag=*/false);
      }
      return;
    }
    AtomId atom =
        add_atom(cst.TagSymbolFor(twig.Tag(n)), parent, /*is_tag=*/true);
    for (TwigNodeId c : twig.Children(n)) self(self, c, atom);
  };
  expand(expand, twig.root(), -1);

  // Root-to-leaf atom paths.
  AtomSeq current;
  auto walk = [&](auto&& self, AtomId a) -> void {
    current.push_back(a);
    if (eq.atoms[a].children.empty()) {
      eq.paths.push_back(current);
    } else {
      for (AtomId c : eq.atoms[a].children) self(self, c);
    }
    current.pop_back();
  };
  walk(walk, 0);

  for (AtomId a = 0; a < static_cast<AtomId>(eq.atoms.size()); ++a) {
    if (eq.IsBranch(a)) eq.branch_atoms.push_back(a);
  }
  return eq;
}

namespace {

void AppendAtomSymbol(const ExpandedQuery& eq, const tree::LabelTable& labels,
                      AtomId a, std::string& out) {
  const suffix::Symbol s = eq.atoms[a].symbol;
  if (s == cst::Cst::kUnknownSymbol) {
    out.push_back('?');
  } else if (suffix::IsTagSymbol(s)) {
    out += labels.Name(suffix::SymbolLabel(s));
  } else {
    out.push_back(suffix::SymbolChar(s));
  }
}

}  // namespace

std::string RenderAtomSeq(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& seq) {
  std::string out;
  bool prev_was_char = false;
  for (AtomId a : seq) {
    const bool is_char = !eq.atoms[a].is_tag;
    if (!out.empty() && !(prev_was_char && is_char)) out.push_back('.');
    AppendAtomSymbol(eq, labels, a, out);
    prev_was_char = is_char;
  }
  return out;
}

std::string RenderAtomSet(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& atoms) {
  std::string out;
  for (AtomId a : atoms) {
    if (!out.empty()) out += ", ";
    out.push_back('#');
    out += std::to_string(a);
    out.push_back(':');
    AppendAtomSymbol(eq, labels, a, out);
  }
  return out;
}

}  // namespace twig::core
