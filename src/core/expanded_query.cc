#include "core/expanded_query.h"

#include <algorithm>

namespace twig::core {

using query::Twig;
using query::TwigNodeId;

ExpandedQuery ExpandQuery(const Twig& twig, const cst::CstView& cst) {
  ExpandedQuery eq;
  if (twig.empty()) return eq;

  // Expand in preorder; record each twig node's atom (for elements) or
  // last char atom (for values) so children can link to parents.
  auto add_atom = [&](suffix::Symbol symbol, AtomId parent,
                      bool is_tag) -> AtomId {
    ExpandedQuery::Atom atom;
    atom.symbol = symbol;
    atom.parent = parent;
    atom.depth = parent < 0 ? 0 : eq.atoms[parent].depth + 1;
    atom.is_tag = is_tag;
    AtomId id = static_cast<AtomId>(eq.atoms.size());
    eq.atoms.push_back(std::move(atom));
    if (parent >= 0) eq.atoms[parent].children.push_back(id);
    return id;
  };

  auto expand = [&](auto&& self, TwigNodeId n, AtomId parent) -> void {
    if (twig.IsValue(n)) {
      const std::string_view value = twig.Value(n);
      const size_t take = std::min(value.size(), cst.max_value_chars());
      AtomId prev = parent;
      for (size_t i = 0; i < take; ++i) {
        prev = add_atom(suffix::CharSymbol(value[i]), prev, /*is_tag=*/false);
      }
      return;
    }
    // A wildcard tag has no single CST symbol; keep the never-matching
    // sentinel and set the flag so lookups go through the frontier
    // walker instead of reporting a spurious miss.
    const bool wildcard = twig.IsWildcard(n);
    AtomId atom = add_atom(
        wildcard ? cst::CstView::kUnknownSymbol : cst.TagSymbolFor(twig.Tag(n)),
        parent, /*is_tag=*/true);
    eq.atoms[atom].wildcard = wildcard;
    eq.atoms[atom].edge = twig.EdgeFromParent(n);
    if (wildcard || eq.atoms[atom].edge == query::EdgeKind::kDescendant) {
      eq.has_special = true;
    }
    for (TwigNodeId c : twig.Children(n)) self(self, c, atom);
  };
  expand(expand, twig.root(), -1);

  // Root-to-leaf atom paths.
  AtomSeq current;
  auto walk = [&](auto&& self, AtomId a) -> void {
    current.push_back(a);
    if (eq.atoms[a].children.empty()) {
      eq.paths.push_back(current);
    } else {
      for (AtomId c : eq.atoms[a].children) self(self, c);
    }
    current.pop_back();
  };
  walk(walk, 0);

  for (AtomId a = 0; a < static_cast<AtomId>(eq.atoms.size()); ++a) {
    if (eq.IsBranch(a)) eq.branch_atoms.push_back(a);
  }
  return eq;
}

namespace {

void AppendAtomSymbol(const ExpandedQuery& eq, const tree::LabelTable& labels,
                      AtomId a, std::string& out) {
  const suffix::Symbol s = eq.atoms[a].symbol;
  if (eq.atoms[a].wildcard) {
    out.push_back('*');
  } else if (s == cst::CstView::kUnknownSymbol) {
    out.push_back('?');
  } else if (suffix::IsTagSymbol(s)) {
    out += labels.Name(suffix::SymbolLabel(s));
  } else {
    out.push_back(suffix::SymbolChar(s));
  }
}

}  // namespace

std::string RenderAtomSeq(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& seq) {
  std::string out;
  bool prev_was_char = false;
  for (AtomId a : seq) {
    const bool is_char = !eq.atoms[a].is_tag;
    if (!out.empty()) {
      if (eq.atoms[a].is_tag &&
          eq.atoms[a].edge == query::EdgeKind::kDescendant) {
        out += "//";
      } else if (!(prev_was_char && is_char)) {
        out.push_back('.');
      }
    }
    AppendAtomSymbol(eq, labels, a, out);
    prev_was_char = is_char;
  }
  return out;
}

bool NeedsFrontier(const ExpandedQuery& eq, const AtomId* atoms,
                   size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const ExpandedQuery::Atom& atom = eq.atoms[atoms[i]];
    if (atom.wildcard) return true;
    if (i > 0 && atom.edge == query::EdgeKind::kDescendant) return true;
  }
  return false;
}

FrontierMatch ResolveAtomFrontier(const ExpandedQuery& eq, const cst::CstView& cst,
                                  const AtomId* atoms, size_t count) {
  FrontierMatch out;
  out.nodes.push_back(cst.root());
  size_t visits = 0;
  std::vector<cst::CstNodeId> next;
  std::vector<cst::CstNodeId> dfs;
  // Child edges are copied out per node (a paged CST's backing page may
  // be evicted between steps); one buffer reused across the whole walk
  // keeps the copy allocation-free in steady state.
  std::vector<suffix::ChildIndex::Entry> children;
  for (size_t i = 0; i < count; ++i) {
    const ExpandedQuery::Atom& atom = eq.atoms[atoms[i]];
    const bool descend =
        i > 0 && atom.edge == query::EdgeKind::kDescendant;
    if (!atom.wildcard && atom.symbol == cst::CstView::kUnknownSymbol) {
      // Tag absent from the data: nothing can match past this point;
      // `nodes` stays the frontier of the matched prefix.
      return out;
    }
    next.clear();
    for (cst::CstNodeId from : out.nodes) {
      if (!descend) {
        if (!atom.wildcard) {
          ++visits;
          const cst::CstNodeId to = cst.Step(from, atom.symbol);
          if (to != cst::kNoCstNode) next.push_back(to);
        } else {
          cst.CopyChildren(from, &children);
          for (const auto& edge : children) {
            ++visits;
            if (suffix::IsTagSymbol(edge.symbol)) next.push_back(edge.child);
          }
        }
      } else {
        // Descendant step: every strict tag-descendant of `from`
        // reachable through tag edges, matching the symbol (wildcards
        // match any tag).
        dfs.clear();
        dfs.push_back(from);
        while (!dfs.empty() && !out.truncated) {
          const cst::CstNodeId at = dfs.back();
          dfs.pop_back();
          cst.CopyChildren(at, &children);
          for (const auto& edge : children) {
            if (!suffix::IsTagSymbol(edge.symbol)) continue;
            if (++visits > kMaxFrontierVisits) {
              out.truncated = true;
              break;
            }
            if (atom.wildcard || edge.symbol == atom.symbol) {
              next.push_back(edge.child);
            }
            dfs.push_back(edge.child);
          }
        }
      }
      if (visits > kMaxFrontierVisits) out.truncated = true;
      if (out.truncated) return out;
    }
    // Distinct sources can reach the same node through descendant
    // steps; each CST node is one label path, so count it once.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next.size() > kMaxFrontierNodes) {
      out.truncated = true;
      return out;
    }
    if (next.empty()) return out;  // frontier of the matched prefix stays
    out.nodes.swap(next);
    out.matched = i + 1;
  }
  return out;
}

std::string RenderAtomSet(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& atoms) {
  std::string out;
  for (AtomId a : atoms) {
    if (!out.empty()) out += ", ";
    out.push_back('#');
    out += std::to_string(a);
    out.push_back(':');
    AppendAtomSymbol(eq, labels, a, out);
  }
  return out;
}

}  // namespace twig::core
