// Twiglet decomposition (Sections 3.2, 4).
//
// After path parsing, each algorithm assembles the parsed subpaths into
// *estimand pieces*: connected query subtrees whose counts can be read
// (single subpath) or estimated by set hashing (>= 2 subpaths sharing a
// root). The decompositions:
//   * single-path   — every parsed subpath is its own piece (pure MO,
//                     Greedy);
//   * MOSH          — for each branch atom and each distinct start atom
//                     of parsed subpaths passing through it, subpaths
//                     with that start are merged into one set-hash
//                     twiglet; merged subpaths are dropped as singles;
//   * MSH           — like MOSH, but each group also admits the
//                     *suffixes* of maximal subpaths that begin at the
//                     group's start atom, forming deep-and-bushy
//                     twiglets without shortening the retained maximal
//                     pieces.
// PMOSH = MOSH decomposition applied to the piecewise-maximal parse.

#ifndef TWIG_CORE_PIECES_H_
#define TWIG_CORE_PIECES_H_

#include <cstdint>
#include <vector>

#include "core/expanded_query.h"
#include "core/parse.h"

namespace twig::core {

/// The subpaths of one estimand piece; nearly always 1 (a plain path)
/// or the 2-4 branches of a twiglet, so inline storage suffices.
using SubpathList = util::SmallVector<AtomSeq, 4>;

/// A connected query subtree whose count the combiner will estimate:
/// one or more subpaths emanating from a common root atom.
struct EstimandPiece {
  AtomId root_atom = -1;
  /// Root-anchored atom sequences (each begins with root_atom). One
  /// sequence = plain subpath; several = set-hash twiglet.
  SubpathList subpaths;
  /// Sorted union of all subpath atoms.
  AtomSeq atoms;
  /// True for a single atom with no CST match.
  bool missing = false;
};

/// Converts one parsed subpath into a single-subpath piece.
EstimandPiece PieceFromParsed(const ExpandedQuery& eq, const ParsedPiece& p);

/// Identity decomposition: each parsed subpath is its own piece.
std::vector<EstimandPiece> SinglePathPieces(const ExpandedQuery& eq,
                                            const std::vector<ParsedPiece>& parsed);

/// MOSH twiglet decomposition (also used by PMOSH on the
/// piecewise-maximal parse).
std::vector<EstimandPiece> MoshDecompose(const ExpandedQuery& eq,
                                         const std::vector<ParsedPiece>& parsed);

/// MSH twiglet decomposition.
std::vector<EstimandPiece> MshDecompose(const ExpandedQuery& eq,
                                        const std::vector<ParsedPiece>& parsed);

/// Order-independent fingerprint of a decomposition; two algorithms
/// parsed a query "differently" (Figures 5(b), 6(a)) iff their
/// fingerprints differ.
uint64_t DecompositionFingerprint(const std::vector<EstimandPiece>& pieces);

/// Renders a piece for explain traces: its root-anchored subpaths in
/// symbol form, " | "-separated for twiglets ("book.author | book.year").
std::string DescribePiece(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const EstimandPiece& piece);

}  // namespace twig::core

#endif  // TWIG_CORE_PIECES_H_
