// Public estimation API: the paper's four algorithms (pure MO, MOSH,
// PMOSH, MSH) and the two naive baselines (Leaf, Greedy) — Table 1.
//
//   Algorithm | path info | correlations | twiglets               | combination
//   ----------+-----------+--------------+------------------------+------------
//   Leaf      | no        | no           | single leaf strings    | MO
//   Greedy    | yes       | no           | single path            | greedy
//   MO        | yes       | no           | single path            | MO
//   MOSH      | yes       | yes          | deep, often skinny     | MO
//   PMOSH     | yes       | yes          | bushy, often shallow   | MO
//   MSH       | yes       | yes          | deep and bushy         | MO
//
// Typical use:
//   auto pst = suffix::PathSuffixTree::Build(data);
//   cst::CstOptions copt;
//   copt.space_budget_bytes = data_bytes / 100;  // 1% summary
//   auto summary = cst::Cst::Build(data, pst, copt);
//   core::TwigEstimator estimator(&summary);
//   double est = estimator.Estimate(twig, core::Algorithm::kMsh);

#ifndef TWIG_CORE_ESTIMATOR_H_
#define TWIG_CORE_ESTIMATOR_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/combine.h"
#include "cst/cst.h"
#include "obs/trace.h"
#include "query/twig.h"
#include "stats/metrics.h"
#include "workload/workload.h"

namespace twig::core {

/// The estimation algorithms of Section 4 / Table 1.
enum class Algorithm {
  kLeaf,
  kGreedy,
  kMo,
  kMosh,
  kPmosh,
  kMsh,
};

/// All algorithms, in the paper's reporting order.
inline constexpr std::array<Algorithm, 6> kAllAlgorithms = {
    Algorithm::kLeaf, Algorithm::kGreedy, Algorithm::kMo,
    Algorithm::kMosh, Algorithm::kPmosh,  Algorithm::kMsh,
};

/// Display name ("MOSH", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Options for one estimation call.
struct EstimateOptions {
  /// The experiments in Section 6 run on multiset data and report
  /// occurrence counts; presence counting is the basic (set) problem.
  CountSemantics semantics = CountSemantics::kOccurrence;
  /// Count charged to atoms with no CST match; 0 = auto (half the
  /// prune threshold).
  double missing_count = 0;
  /// Optional explain sink: when non-null, Estimate clears it and
  /// records the full decomposition + combination provenance
  /// (obs/trace.h). Not owned; NOT thread-safe — attach one trace per
  /// concurrent estimate. EstimateBatch ignores it (queries fan across
  /// threads; use a sequential Estimate call to explain one query).
  obs::Trace* trace = nullptr;
};

/// Options for EstimateBatch.
struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread. 1 runs inline on the
  /// calling thread (no pool).
  size_t num_threads = 1;
  /// Absolute deadline for the batch; max() = none. Single estimates
  /// run in microseconds, so the deadline is checked between queries,
  /// never mid-query: queries not *started* before the deadline are
  /// skipped — their estimate slots hold quiet NaN and
  /// stats->queries_skipped counts them — while completed slots stay
  /// bit-identical to an undeadlined run.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  EstimateOptions estimate;
};

/// Estimates twig match counts against a CST summary. Stateless apart
/// from the CST reference; cheap to construct.
class TwigEstimator {
 public:
  /// `summary` must outlive the estimator.
  explicit TwigEstimator(const cst::CstView* summary) : cst_(summary) {}

  /// Estimation with the full error contract: every twig either
  /// produces an estimate or a structured error — never a silent zero.
  /// Returns InvalidArgument for the empty twig and for wildcard /
  /// descendant frontier aggregations that exceed the walker's budget
  /// (expanded_query.h kMaxFrontier* caps).
  Result<double> TryEstimate(const query::Twig& twig, Algorithm algorithm,
                             const EstimateOptions& options = {}) const;

  /// Estimated number of matches of `twig` in the summarized data.
  /// Convenience wrapper over TryEstimate: failures surface as a quiet
  /// NaN (never a fabricated 0), so error-aware callers should prefer
  /// TryEstimate.
  double Estimate(const query::Twig& twig, Algorithm algorithm,
                  const EstimateOptions& options = {}) const;

  /// Estimates every query of `workload`, fanning the (independent)
  /// queries across options.num_threads workers. estimates[i] always
  /// equals Estimate(workload[i].twig, ...) bit for bit, regardless of
  /// thread count: queries never share mutable state — the only shared
  /// structure is the immutable CST — and each result is written to its
  /// own slot. Queries not started before options.deadline are skipped
  /// (quiet NaN slots; see BatchOptions::deadline), and queries whose
  /// TryEstimate fails (e.g. frontier budget exhaustion) hold NaN too,
  /// counted in stats->queries_failed. If `stats` is
  /// non-null it receives per-thread query and
  /// busy-time counters, the batch wall time, and the batch's global
  /// obs counter deltas. Per-query latencies feed the algorithm's
  /// obs::MetricsRegistry histogram. An options.estimate.trace sink is
  /// ignored (traces are single-query; see EstimateOptions::trace).
  std::vector<double> EstimateBatch(const workload::Workload& workload,
                                    Algorithm algorithm,
                                    const BatchOptions& options = {},
                                    stats::BatchStats* stats = nullptr) const;

  /// Order-independent fingerprint of the algorithm's decomposition of
  /// `twig` (pieces + twiglets). Two algorithms "parse a query
  /// differently" (Figures 5(b), 6(a)) iff fingerprints differ.
  uint64_t DecompositionFingerprint(const query::Twig& twig,
                                    Algorithm algorithm) const;

  const cst::CstView& summary() const { return *cst_; }

 private:
  double EstimateLeaf(const ExpandedQuery& eq, const Combiner& combiner) const;

  const cst::CstView* cst_;
};

}  // namespace twig::core

#endif  // TWIG_CORE_ESTIMATOR_H_
