// Path parsing strategies (Section 3.3).
//
// Each root-to-leaf path of the query is parsed into subpaths that have
// matches in the CST:
//   * maximal           — overlapping maximal-overlap (MO) parse: the
//                         first piece is the longest CST match at the
//                         path start; each next piece is the longest
//                         match at the *earliest* position extending
//                         past the covered region (maximizing overlap);
//   * piecewise-maximal — the path is cut into segments at root /
//                         branch / leaf nodes (boundaries belong to
//                         both adjacent segments) and each segment is
//                         MO-parsed independently (PMOSH);
//   * greedy            — non-overlapping longest matches, each
//                         starting where the previous ended ([12]'s
//                         parse, used by the Greedy baseline).
//
// Atoms whose symbol is absent from the CST yield single-atom "missing"
// pieces; the combiner charges those a below-threshold default count.

#ifndef TWIG_CORE_PARSE_H_
#define TWIG_CORE_PARSE_H_

#include <vector>

#include "core/expanded_query.h"
#include "cst/cst.h"

namespace twig::core {

/// A parsed subpath: a contiguous interval of one root-to-leaf path.
struct ParsedPiece {
  int path = 0;    // index into ExpandedQuery::paths
  int start = 0;   // first atom position within the path
  int length = 0;  // number of atoms
  bool missing = false;  // single atom with no CST match
  /// Deepest CST node matching the interval (kNoCstNode if missing).
  cst::CstNodeId cst_node = cst::kNoCstNode;

  AtomId StartAtom(const ExpandedQuery& eq) const {
    return eq.paths[path][start];
  }
  AtomId EndAtom(const ExpandedQuery& eq) const {
    return eq.paths[path][start + length - 1];
  }
};

enum class ParseStrategy {
  kMaximal,
  kPiecewiseMaximal,
  kGreedy,
};

/// Parses the interval [lo, hi) of path `path_index` with the MO
/// (maximal-overlap) strategy.
std::vector<ParsedPiece> MaximalParseInterval(const ExpandedQuery& eq,
                                              const cst::CstView& cst,
                                              int path_index, int lo, int hi);

/// Parses the interval [lo, hi) with the greedy strategy.
std::vector<ParsedPiece> GreedyParseInterval(const ExpandedQuery& eq,
                                             const cst::CstView& cst,
                                             int path_index, int lo, int hi);

/// Parses every root-to-leaf path of the query with `strategy` and
/// returns the deduplicated set of pieces (paths sharing a prefix
/// produce identical pieces only once; distinct query regions with
/// equal symbols remain distinct).
std::vector<ParsedPiece> ParseQuery(const ExpandedQuery& eq,
                                    const cst::CstView& cst,
                                    ParseStrategy strategy);

}  // namespace twig::core

#endif  // TWIG_CORE_PARSE_H_
