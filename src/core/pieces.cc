#include "core/pieces.h"

#include <algorithm>

#include "util/hash.h"
#include "util/small_vector.h"

namespace twig::core {

namespace {

/// Atom sequence of a parsed subpath.
AtomSeq PieceAtoms(const ExpandedQuery& eq, const ParsedPiece& p) {
  const auto& path = eq.paths[p.path];
  return AtomSeq(path.begin() + p.start, path.begin() + p.start + p.length);
}

/// Position of `atom` within `seq`, or -1.
int FindAtom(const AtomSeq& seq, AtomId atom) {
  for (size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == atom) return static_cast<int>(i);
  }
  return -1;
}

EstimandPiece MakeTwiglet(AtomId root, SubpathList subpaths) {
  EstimandPiece piece;
  piece.root_atom = root;
  for (const auto& sp : subpaths) {
    piece.atoms.insert(piece.atoms.end(), sp.begin(), sp.end());
  }
  std::sort(piece.atoms.begin(), piece.atoms.end());
  piece.atoms.erase(std::unique(piece.atoms.begin(), piece.atoms.end()),
                    piece.atoms.end());
  piece.subpaths = std::move(subpaths);
  return piece;
}

}  // namespace

EstimandPiece PieceFromParsed(const ExpandedQuery& eq, const ParsedPiece& p) {
  EstimandPiece piece;
  AtomSeq atoms = PieceAtoms(eq, p);
  piece.root_atom = atoms.front();
  piece.atoms = atoms;  // a path: already sorted in preorder = ascending
  piece.subpaths.push_back(std::move(atoms));
  piece.missing = p.missing;
  return piece;
}

std::vector<EstimandPiece> SinglePathPieces(
    const ExpandedQuery& eq, const std::vector<ParsedPiece>& parsed) {
  std::vector<EstimandPiece> out;
  out.reserve(parsed.size());
  for (const ParsedPiece& p : parsed) out.push_back(PieceFromParsed(eq, p));
  return out;
}

std::vector<EstimandPiece> MoshDecompose(const ExpandedQuery& eq,
                                         const std::vector<ParsedPiece>& parsed) {
  util::SmallVector<AtomSeq, 8> atom_seqs;
  atom_seqs.resize(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    atom_seqs[i] = PieceAtoms(eq, parsed[i]);
  }

  // Group member subpaths by (branch atom, start atom); a subpath
  // "passes through" the branch if it contains it at a non-final
  // position (i.e., continues below the branch). Queries have a
  // handful of groups, so a flat vector kept sorted by key stands in
  // for a std::map (same iteration order, no per-node allocations).
  struct Grouping {
    std::pair<AtomId, AtomId> key;
    std::vector<size_t> members;
  };
  std::vector<Grouping> groups;
  for (AtomId beta : eq.branch_atoms) {
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (parsed[i].missing) continue;
      const int pos = FindAtom(atom_seqs[i], beta);
      if (pos < 0 || pos + 1 >= static_cast<int>(atom_seqs[i].size())) continue;
      const std::pair<AtomId, AtomId> key = {beta, atom_seqs[i].front()};
      auto it = std::lower_bound(
          groups.begin(), groups.end(), key,
          [](const Grouping& g, const std::pair<AtomId, AtomId>& k) {
            return g.key < k;
          });
      if (it == groups.end() || it->key != key) {
        it = groups.insert(it, Grouping{key, {}});
      }
      it->members.push_back(i);
    }
  }

  std::vector<EstimandPiece> out;
  util::SmallVector<unsigned char, 8> absorbed;
  absorbed.resize(parsed.size());
  std::vector<std::vector<size_t>> emitted;  // dedupe by member set
  for (auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    if (members.size() < 2 ||
        std::find(emitted.begin(), emitted.end(), members) != emitted.end()) {
      continue;
    }
    emitted.push_back(members);
    SubpathList subpaths;
    for (size_t i : members) {
      subpaths.push_back(atom_seqs[i]);
      absorbed[i] = 1;
    }
    out.push_back(MakeTwiglet(key.second, std::move(subpaths)));
  }
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (!absorbed[i]) out.push_back(PieceFromParsed(eq, parsed[i]));
  }
  return out;
}

std::vector<EstimandPiece> MshDecompose(const ExpandedQuery& eq,
                                        const std::vector<ParsedPiece>& parsed) {
  util::SmallVector<AtomSeq, 8> atom_seqs;
  atom_seqs.resize(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    atom_seqs[i] = PieceAtoms(eq, parsed[i]);
  }

  std::vector<EstimandPiece> out;
  util::SmallVector<unsigned char, 8> absorbed;
  absorbed.resize(parsed.size());
  // Dedupe twiglets by their member (piece, suffix offset) sets.
  std::vector<std::vector<std::pair<size_t, int>>> emitted;

  for (AtomId beta : eq.branch_atoms) {
    // Subpaths passing through this branch, and their start atoms
    // (visited in ascending order, as the std::set this replaces did).
    util::SmallVector<size_t, 8> through;
    AtomSeq starts;
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (parsed[i].missing) continue;
      const int pos = FindAtom(atom_seqs[i], beta);
      if (pos < 0 || pos + 1 >= static_cast<int>(atom_seqs[i].size())) continue;
      through.push_back(i);
      starts.push_back(atom_seqs[i].front());
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    // For each starting point, admit the suffix (from that start) of
    // every subpath through the branch that contains the start on the
    // root side of the branch.
    for (AtomId u : starts) {
      std::vector<std::pair<size_t, int>> members;  // (piece, suffix pos)
      for (size_t i : through) {
        const int pos_u = FindAtom(atom_seqs[i], u);
        const int pos_b = FindAtom(atom_seqs[i], beta);
        if (pos_u < 0 || pos_u > pos_b) continue;
        members.emplace_back(i, pos_u);
      }
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end());
      if (std::find(emitted.begin(), emitted.end(), members) !=
          emitted.end()) {
        continue;
      }
      emitted.push_back(members);
      SubpathList subpaths;
      for (const auto& [i, pos_u] : members) {
        subpaths.emplace_back(atom_seqs[i].begin() + pos_u,
                              atom_seqs[i].end());
        // A subpath participating with its full extent is represented
        // by the twiglet; shortened (suffix) participants remain as
        // standalone pieces too.
        if (pos_u == 0) absorbed[i] = true;
      }
      out.push_back(MakeTwiglet(u, std::move(subpaths)));
    }
  }
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (!absorbed[i]) out.push_back(PieceFromParsed(eq, parsed[i]));
  }
  return out;
}

uint64_t DecompositionFingerprint(const std::vector<EstimandPiece>& pieces) {
  std::vector<uint64_t> hashes;
  hashes.reserve(pieces.size());
  for (const EstimandPiece& piece : pieces) {
    // Canonicalize: hash each subpath, order-independently combine.
    std::vector<uint64_t> sp_hashes;
    for (const auto& sp : piece.subpaths) {
      uint64_t h = Mix64(0x5b5bULL);
      for (AtomId a : sp) h = HashCombine(h, static_cast<uint64_t>(a));
      sp_hashes.push_back(h);
    }
    std::sort(sp_hashes.begin(), sp_hashes.end());
    uint64_t h = Mix64(piece.missing ? 0xdeadULL : 0xbeefULL);
    for (uint64_t s : sp_hashes) h = HashCombine(h, s);
    hashes.push_back(h);
  }
  std::sort(hashes.begin(), hashes.end());
  uint64_t out = Mix64(0x7715ULL);
  for (uint64_t h : hashes) out = HashCombine(out, h);
  return out;
}

std::string DescribePiece(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const EstimandPiece& piece) {
  std::string out;
  for (const auto& sp : piece.subpaths) {
    if (!out.empty()) out += " | ";
    out += RenderAtomSeq(eq, labels, sp);
  }
  if (piece.missing) out += " (missing)";
  return out;
}

}  // namespace twig::core
