#include "core/estimator.h"

#include <algorithm>

#include "core/parse.h"
#include "core/pieces.h"

namespace twig::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLeaf:
      return "Leaf";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kMo:
      return "MO";
    case Algorithm::kMosh:
      return "MOSH";
    case Algorithm::kPmosh:
      return "PMOSH";
    case Algorithm::kMsh:
      return "MSH";
  }
  return "?";
}

namespace {

/// Builds the decomposition an algorithm feeds to the combiner.
/// (Not meaningful for Leaf, which has its own per-leaf procedure.)
std::vector<EstimandPiece> Decompose(const ExpandedQuery& eq,
                                     const cst::Cst& cst,
                                     Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kGreedy));
    case Algorithm::kMo:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kMosh:
      return MoshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kPmosh:
      return MoshDecompose(
          eq, ParseQuery(eq, cst, ParseStrategy::kPiecewiseMaximal));
    case Algorithm::kMsh:
      return MshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kLeaf:
      break;
  }
  // Leaf: each leaf's maximal parse, kept as single-path pieces (used
  // only for fingerprinting).
  std::vector<EstimandPiece> out;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    for (const ParsedPiece& p : MaximalParseInterval(
             eq, cst, pi, leaf_start, static_cast<int>(path.size()))) {
      out.push_back(PieceFromParsed(eq, p));
    }
  }
  return out;
}

}  // namespace

double TwigEstimator::EstimateLeaf(const ExpandedQuery& eq,
                                   const CombineOptions& options) const {
  // Estimate each leaf string individually with MO parsing and
  // combination, ignoring all path (tag) context — a single-leaf (path)
  // query is estimated purely by its leaf string (Section 6: "the
  // count of the path query book.author.Stonebraker will be estimated
  // as the MO estimate for Stonebraker") — then combine the per-leaf
  // estimates under independence. Ignoring structure makes Leaf
  // underestimate most multi-path queries while occasionally blowing
  // up on unselective leaf strings — the baseline's characteristic
  // failure mode.
  Combiner combiner(eq, *cst_, options);
  const double n = std::max<double>(1.0, cst_->data_node_count());
  double estimate = n;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    // The leaf of this path: the trailing run of character atoms, or
    // the final tag atom for structural leaves.
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    std::vector<ParsedPiece> parsed = MaximalParseInterval(
        eq, *cst_, pi, leaf_start, static_cast<int>(path.size()));
    estimate *= combiner.MoCombine(SinglePathPieces(eq, parsed)) / n;
  }
  return std::max(estimate, 0.0);
}

double TwigEstimator::Estimate(const query::Twig& twig, Algorithm algorithm,
                               const EstimateOptions& options) const {
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  if (eq.atoms.empty()) return 0.0;
  CombineOptions copt;
  copt.semantics = options.semantics;
  copt.missing_count = options.missing_count;

  if (algorithm == Algorithm::kLeaf) return EstimateLeaf(eq, copt);

  Combiner combiner(eq, *cst_, copt);
  std::vector<EstimandPiece> pieces = Decompose(eq, *cst_, algorithm);
  if (algorithm == Algorithm::kGreedy) {
    return combiner.IndependenceCombine(pieces);
  }
  return combiner.MoCombine(std::move(pieces));
}

uint64_t TwigEstimator::DecompositionFingerprint(const query::Twig& twig,
                                                 Algorithm algorithm) const {
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  return core::DecompositionFingerprint(Decompose(eq, *cst_, algorithm));
}

}  // namespace twig::core
