#include "core/estimator.h"

#include <algorithm>
#include <chrono>

#include "core/parse.h"
#include "core/pieces.h"
#include "util/thread_pool.h"

namespace twig::core {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLeaf:
      return "Leaf";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kMo:
      return "MO";
    case Algorithm::kMosh:
      return "MOSH";
    case Algorithm::kPmosh:
      return "PMOSH";
    case Algorithm::kMsh:
      return "MSH";
  }
  return "?";
}

namespace {

/// Builds the decomposition an algorithm feeds to the combiner.
/// (Not meaningful for Leaf, which has its own per-leaf procedure.)
std::vector<EstimandPiece> Decompose(const ExpandedQuery& eq,
                                     const cst::Cst& cst,
                                     Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kGreedy));
    case Algorithm::kMo:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kMosh:
      return MoshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kPmosh:
      return MoshDecompose(
          eq, ParseQuery(eq, cst, ParseStrategy::kPiecewiseMaximal));
    case Algorithm::kMsh:
      return MshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kLeaf:
      break;
  }
  // Leaf: each leaf's maximal parse, kept as single-path pieces (used
  // only for fingerprinting).
  std::vector<EstimandPiece> out;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    for (const ParsedPiece& p : MaximalParseInterval(
             eq, cst, pi, leaf_start, static_cast<int>(path.size()))) {
      out.push_back(PieceFromParsed(eq, p));
    }
  }
  return out;
}

}  // namespace

double TwigEstimator::EstimateLeaf(const ExpandedQuery& eq,
                                   const CombineOptions& options) const {
  // Estimate each leaf string individually with MO parsing and
  // combination, ignoring all path (tag) context — a single-leaf (path)
  // query is estimated purely by its leaf string (Section 6: "the
  // count of the path query book.author.Stonebraker will be estimated
  // as the MO estimate for Stonebraker") — then combine the per-leaf
  // estimates under independence. Ignoring structure makes Leaf
  // underestimate most multi-path queries while occasionally blowing
  // up on unselective leaf strings — the baseline's characteristic
  // failure mode.
  Combiner combiner(eq, *cst_, options);
  const double n = std::max<double>(1.0, cst_->data_node_count());
  double estimate = n;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    // The leaf of this path: the trailing run of character atoms, or
    // the final tag atom for structural leaves.
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    std::vector<ParsedPiece> parsed = MaximalParseInterval(
        eq, *cst_, pi, leaf_start, static_cast<int>(path.size()));
    estimate *= combiner.MoCombine(SinglePathPieces(eq, parsed)) / n;
  }
  return std::max(estimate, 0.0);
}

double TwigEstimator::Estimate(const query::Twig& twig, Algorithm algorithm,
                               const EstimateOptions& options) const {
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  if (eq.atoms.empty()) return 0.0;
  CombineOptions copt;
  copt.semantics = options.semantics;
  copt.missing_count = options.missing_count;

  if (algorithm == Algorithm::kLeaf) return EstimateLeaf(eq, copt);

  Combiner combiner(eq, *cst_, copt);
  std::vector<EstimandPiece> pieces = Decompose(eq, *cst_, algorithm);
  if (algorithm == Algorithm::kGreedy) {
    return combiner.IndependenceCombine(pieces);
  }
  return combiner.MoCombine(std::move(pieces));
}

std::vector<double> TwigEstimator::EstimateBatch(
    const workload::Workload& workload, Algorithm algorithm,
    const BatchOptions& options, stats::BatchStats* stats) const {
  using Clock = std::chrono::steady_clock;
  const size_t num_threads =
      options.num_threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : options.num_threads;

  std::vector<double> estimates(workload.size());
  stats::BatchStats local;
  local.num_threads = num_threads;
  local.queries_per_thread.assign(num_threads, 0);
  local.busy_seconds_per_thread.assign(num_threads, 0);

  const auto wall_start = Clock::now();
  auto run_one = [&](size_t item, size_t worker) {
    const auto t0 = Clock::now();
    estimates[item] =
        Estimate(workload[item].twig, algorithm, options.estimate);
    local.busy_seconds_per_thread[worker] +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    ++local.queries_per_thread[worker];
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < workload.size(); ++i) run_one(i, 0);
  } else {
    util::ThreadPool pool(num_threads);
    pool.ParallelFor(workload.size(), run_one);
  }
  local.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  if (stats != nullptr) *stats = std::move(local);
  return estimates;
}

uint64_t TwigEstimator::DecompositionFingerprint(const query::Twig& twig,
                                                 Algorithm algorithm) const {
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  return core::DecompositionFingerprint(Decompose(eq, *cst_, algorithm));
}

}  // namespace twig::core
