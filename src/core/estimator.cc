#include "core/estimator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "core/parse.h"
#include "core/pieces.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace twig::core {

// obs latency series are indexed by Algorithm value; keep the prefix
// in sync (series beyond the algorithms belong to the serving layer,
// e.g. obs::kServeWaitSeries).
static_assert(obs::kLatencySeries >= kAllAlgorithms.size(),
              "obs::kLatencySeriesNames must mirror core::kAllAlgorithms");
static_assert(obs::kServeWaitSeries >= kAllAlgorithms.size(),
              "the serve_wait series must not alias an algorithm series");

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLeaf:
      return "Leaf";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kMo:
      return "MO";
    case Algorithm::kMosh:
      return "MOSH";
    case Algorithm::kPmosh:
      return "PMOSH";
    case Algorithm::kMsh:
      return "MSH";
  }
  return "?";
}

namespace {

/// Builds the decomposition an algorithm feeds to the combiner.
/// (Not meaningful for Leaf, which has its own per-leaf procedure.)
std::vector<EstimandPiece> Decompose(const ExpandedQuery& eq,
                                     const cst::CstView& cst,
                                     Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGreedy:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kGreedy));
    case Algorithm::kMo:
      return SinglePathPieces(eq,
                              ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kMosh:
      return MoshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kPmosh:
      return MoshDecompose(
          eq, ParseQuery(eq, cst, ParseStrategy::kPiecewiseMaximal));
    case Algorithm::kMsh:
      return MshDecompose(eq, ParseQuery(eq, cst, ParseStrategy::kMaximal));
    case Algorithm::kLeaf:
      break;
  }
  // Leaf: each leaf's maximal parse, kept as single-path pieces (used
  // only for fingerprinting).
  std::vector<EstimandPiece> out;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    for (const ParsedPiece& p : MaximalParseInterval(
             eq, cst, pi, leaf_start, static_cast<int>(path.size()))) {
      out.push_back(PieceFromParsed(eq, p));
    }
  }
  return out;
}

}  // namespace

double TwigEstimator::EstimateLeaf(const ExpandedQuery& eq,
                                   const Combiner& combiner) const {
  // Estimate each leaf string individually with MO parsing and
  // combination, ignoring all path (tag) context — a single-leaf (path)
  // query is estimated purely by its leaf string (Section 6: "the
  // count of the path query book.author.Stonebraker will be estimated
  // as the MO estimate for Stonebraker") — then combine the per-leaf
  // estimates under independence. Ignoring structure makes Leaf
  // underestimate most multi-path queries while occasionally blowing
  // up on unselective leaf strings — the baseline's characteristic
  // failure mode.
  const double n = std::max<double>(1.0, cst_->data_node_count());
  double estimate = n;
  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const auto& path = eq.paths[pi];
    // The leaf of this path: the trailing run of character atoms, or
    // the final tag atom for structural leaves.
    int leaf_start = static_cast<int>(path.size()) - 1;
    while (leaf_start > 0 && !eq.atoms[path[leaf_start - 1]].is_tag) {
      --leaf_start;
    }
    std::vector<ParsedPiece> parsed = MaximalParseInterval(
        eq, *cst_, pi, leaf_start, static_cast<int>(path.size()));
    estimate *= combiner.MoCombine(SinglePathPieces(eq, parsed)) / n;
  }
  return std::max(estimate, 0.0);
}

Result<double> TwigEstimator::TryEstimate(const query::Twig& twig,
                                          Algorithm algorithm,
                                          const EstimateOptions& options)
    const {
  obs::CountEvent(obs::Counter::kEstimates);
  obs::Trace* const trace = options.trace;
  if (trace != nullptr) {
    trace->Clear();
    trace->query = query::FormatTwig(twig);
    trace->algorithm = AlgorithmName(algorithm);
    trace->semantics = options.semantics == CountSemantics::kOccurrence
                           ? "occurrence"
                           : "presence";
    trace->data_node_count =
        static_cast<double>(cst_->data_node_count());
    trace->missing_count = ResolveMissingCount(*cst_, options.missing_count);
    if (algorithm == Algorithm::kLeaf) {
      trace->note =
          "Leaf: each leaf string MO-estimated alone; per-leaf "
          "probabilities combined under independence";
    }
    obs::CountEvent(obs::Counter::kTracesRecorded);
  }
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  if (eq.atoms.empty()) {
    return Status::InvalidArgument("cannot estimate an empty twig");
  }
  CombineOptions copt;
  copt.semantics = options.semantics;
  copt.missing_count = options.missing_count;
  copt.trace = trace;

  Combiner combiner(eq, *cst_, copt);
  double estimate;
  if (algorithm == Algorithm::kLeaf) {
    estimate = EstimateLeaf(eq, combiner);
  } else {
    std::vector<EstimandPiece> pieces = Decompose(eq, *cst_, algorithm);
    estimate = algorithm == Algorithm::kGreedy
                   ? combiner.IndependenceCombine(pieces)
                   : combiner.MoCombine(std::move(pieces));
  }
  // A blown frontier budget poisons every count it touched; surface
  // the error, not the number (the no-silent-zero contract).
  if (!combiner.status().ok()) return combiner.status();
  if (trace != nullptr) trace->estimate = estimate;
  return estimate;
}

double TwigEstimator::Estimate(const query::Twig& twig, Algorithm algorithm,
                               const EstimateOptions& options) const {
  const Result<double> estimate = TryEstimate(twig, algorithm, options);
  return estimate.ok() ? *estimate
                       : std::numeric_limits<double>::quiet_NaN();
}

std::vector<double> TwigEstimator::EstimateBatch(
    const workload::Workload& workload, Algorithm algorithm,
    const BatchOptions& options, stats::BatchStats* stats) const {
  using Clock = std::chrono::steady_clock;
  obs::CountEvent(obs::Counter::kBatches);
  const size_t num_threads =
      options.num_threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : options.num_threads;

  // Explain traces are single-query sinks: queries fan across workers,
  // so an attached trace would be mutated concurrently. Batch runs
  // always estimate untraced (identically for num_threads == 1, to
  // keep the inline path bit-for-bit equal to the pooled one).
  EstimateOptions estimate_options = options.estimate;
  estimate_options.trace = nullptr;

  std::vector<double> estimates(workload.size());
  stats::BatchStats local;
  local.num_threads = num_threads;
  local.queries_per_thread.assign(num_threads, 0);
  local.busy_seconds_per_thread.assign(num_threads, 0);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Get().Snapshot();

  const auto wall_start = Clock::now();
  const size_t latency_series = static_cast<size_t>(algorithm);
  std::atomic<size_t> skipped{0};
  std::atomic<size_t> failed{0};
  auto run_one = [&](size_t item, size_t worker) {
    const auto t0 = Clock::now();
    if (t0 >= options.deadline) {
      estimates[item] = std::numeric_limits<double>::quiet_NaN();
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Result<double> estimate =
        TryEstimate(workload[item].twig, algorithm, estimate_options);
    if (estimate.ok()) {
      estimates[item] = *estimate;
    } else {
      estimates[item] = std::numeric_limits<double>::quiet_NaN();
      failed.fetch_add(1, std::memory_order_relaxed);
    }
    const auto elapsed = Clock::now() - t0;
    obs::MetricsRegistry::Get().RecordLatency(
        latency_series,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
    local.busy_seconds_per_thread[worker] +=
        std::chrono::duration<double>(elapsed).count();
    ++local.queries_per_thread[worker];
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < workload.size(); ++i) run_one(i, 0);
  } else {
    util::ThreadPool pool(num_threads);
    pool.ParallelFor(workload.size(), run_one);
  }
  local.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  local.queries_skipped = skipped.load(std::memory_order_relaxed);
  local.queries_failed = failed.load(std::memory_order_relaxed);
  local.counter_deltas =
      obs::MetricsRegistry::Get().Snapshot().Delta(before).counters;

  if (stats != nullptr) *stats = std::move(local);
  return estimates;
}

uint64_t TwigEstimator::DecompositionFingerprint(const query::Twig& twig,
                                                 Algorithm algorithm) const {
  const ExpandedQuery eq = ExpandQuery(twig, *cst_);
  return core::DecompositionFingerprint(Decompose(eq, *cst_, algorithm));
}

}  // namespace twig::core
