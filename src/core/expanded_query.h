// Expansion of a twig query into CST atoms.
//
// The CST's vocabulary is symbols: atomic tags plus characters of leaf
// value strings. An ExpandedQuery rewrites a twig in that vocabulary:
// every element node becomes one *atom*; every value-predicate leaf
// becomes a chain of character atoms. Root-to-leaf query paths become
// atom-index sequences, which is what the parsing strategies operate
// on, and pieces/twiglets/overlaps are all sets of atoms.
//
// Wildcard atoms (`*`) and descendant edges (`//`) have no single CST
// symbol; they are carried as flags on the atom and resolved against
// the CST by *frontier aggregation* (ResolveAtomFrontier): the set of
// CST nodes reachable from the root through the atom sequence, where a
// wildcard step fans out over all tag children and a descendant step
// fans out over all strict tag descendants. Counts are then summed
// over the frontier — exact for occurrence counts of a single special
// atom on a single path (distinct CST nodes are distinct label paths,
// so their instance sets are disjoint), an upper bound for presence.

#ifndef TWIG_CORE_EXPANDED_QUERY_H_
#define TWIG_CORE_EXPANDED_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cst/cst.h"
#include "query/twig.h"
#include "suffix/symbol.h"
#include "util/small_vector.h"

namespace twig::core {

/// Index of an atom within an ExpandedQuery.
using AtomId = int;

/// A short sequence of atoms (a path, subpath, or chain). Queries have
/// a handful of atoms per path, so the inline capacity makes these
/// allocation-free on the estimation hot path.
using AtomSeq = util::SmallVector<AtomId, 12>;

/// A twig query in CST-symbol form.
struct ExpandedQuery {
  struct Atom {
    /// CST symbol; Cst::kUnknownSymbol if the tag never occurs in the
    /// data (no CST node can match) or the atom is a wildcard.
    suffix::Symbol symbol = 0;
    /// Parent atom, -1 for the root atom.
    AtomId parent = -1;
    /// Depth in the expanded tree (root atom = 0).
    uint32_t depth = 0;
    /// Children in expansion order.
    util::SmallVector<AtomId, 4> children;
    /// True for element atoms (tag symbols); branch points can only be
    /// element atoms.
    bool is_tag = false;
    /// True for `*` atoms: matches any tag symbol.
    bool wildcard = false;
    /// Edge from the parent twig node (kChild for the root atom and
    /// for value-character atoms).
    query::EdgeKind edge = query::EdgeKind::kChild;
  };

  std::vector<Atom> atoms;  // preorder; atoms[0] is the root atom
  /// Root-to-leaf atom sequences, left-to-right.
  std::vector<AtomSeq> paths;
  /// Atoms with >= 2 children (the twig's branch nodes).
  std::vector<AtomId> branch_atoms;
  /// True if any atom is a wildcard or hangs on a descendant edge.
  bool has_special = false;

  bool IsBranch(AtomId a) const { return atoms[a].children.size() >= 2; }
};

/// Expands `twig` against `cst` (which supplies the tag-symbol mapping
/// and the value-character cap).
ExpandedQuery ExpandQuery(const query::Twig& twig, const cst::CstView& cst);

/// True if resolving the contiguous atom sequence needs frontier
/// aggregation: any wildcard atom, or a descendant edge at a
/// non-initial position. The first atom's edge is ignored because
/// subpath lookups start anywhere in the data tree.
bool NeedsFrontier(const ExpandedQuery& eq, const AtomId* atoms, size_t count);

/// Frontier-size cap: an aggregation that would track more CST nodes
/// than this is refused (budget exhaustion, not silently truncated).
inline constexpr size_t kMaxFrontierNodes = 4096;
/// Cap on CST edges examined per ResolveAtomFrontier call.
inline constexpr size_t kMaxFrontierVisits = size_t{1} << 18;

/// Result of resolving an atom sequence with wildcard / descendant
/// steps against the CST.
struct FrontierMatch {
  /// CST nodes whose subpaths match the first `matched` atoms, sorted
  /// and deduplicated. Starts as {root} for matched == 0.
  std::vector<cst::CstNodeId> nodes;
  /// Longest prefix of the sequence with a nonempty frontier.
  size_t matched = 0;
  /// True if a budget cap fired; `nodes`/`matched` reflect the last
  /// fully-resolved step and must not be treated as a complete answer.
  bool truncated = false;
};

/// Walks `count` atoms starting at `atoms[0]` from the CST root,
/// expanding wildcard and descendant steps over the CST's tag
/// children. The first atom's edge is ignored (subpaths start
/// anywhere); a leading atom with Cst::kUnknownSymbol and no wildcard
/// flag yields an empty frontier.
FrontierMatch ResolveAtomFrontier(const ExpandedQuery& eq, const cst::CstView& cst,
                                  const AtomId* atoms, size_t count);

/// Renders an atom sequence for diagnostics and explain traces, in the
/// same form as Cst::DescribeSubpath ("book.author.Su"); atoms whose
/// tag never occurs in the data render as "?".
std::string RenderAtomSeq(const ExpandedQuery& eq,
                          const tree::LabelTable& labels, const AtomSeq& seq);

/// Renders an arbitrary atom set ("#3:author, #4:S") — used for
/// maximal-overlap conditioning sets, which need atom identity because
/// distinct query regions can share symbols.
std::string RenderAtomSet(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& atoms);

}  // namespace twig::core

#endif  // TWIG_CORE_EXPANDED_QUERY_H_
