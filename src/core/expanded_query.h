// Expansion of a twig query into CST atoms.
//
// The CST's vocabulary is symbols: atomic tags plus characters of leaf
// value strings. An ExpandedQuery rewrites a twig in that vocabulary:
// every element node becomes one *atom*; every value-predicate leaf
// becomes a chain of character atoms. Root-to-leaf query paths become
// atom-index sequences, which is what the parsing strategies operate
// on, and pieces/twiglets/overlaps are all sets of atoms.

#ifndef TWIG_CORE_EXPANDED_QUERY_H_
#define TWIG_CORE_EXPANDED_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cst/cst.h"
#include "query/twig.h"
#include "suffix/symbol.h"
#include "util/small_vector.h"

namespace twig::core {

/// Index of an atom within an ExpandedQuery.
using AtomId = int;

/// A short sequence of atoms (a path, subpath, or chain). Queries have
/// a handful of atoms per path, so the inline capacity makes these
/// allocation-free on the estimation hot path.
using AtomSeq = util::SmallVector<AtomId, 12>;

/// A twig query in CST-symbol form.
struct ExpandedQuery {
  struct Atom {
    /// CST symbol; Cst::kUnknownSymbol if the tag never occurs in the
    /// data (no CST node can match).
    suffix::Symbol symbol = 0;
    /// Parent atom, -1 for the root atom.
    AtomId parent = -1;
    /// Depth in the expanded tree (root atom = 0).
    uint32_t depth = 0;
    /// Children in expansion order.
    util::SmallVector<AtomId, 4> children;
    /// True for element atoms (tag symbols); branch points can only be
    /// element atoms.
    bool is_tag = false;
  };

  std::vector<Atom> atoms;  // preorder; atoms[0] is the root atom
  /// Root-to-leaf atom sequences, left-to-right.
  std::vector<AtomSeq> paths;
  /// Atoms with >= 2 children (the twig's branch nodes).
  std::vector<AtomId> branch_atoms;

  bool IsBranch(AtomId a) const { return atoms[a].children.size() >= 2; }
};

/// Expands `twig` against `cst` (which supplies the tag-symbol mapping
/// and the value-character cap).
ExpandedQuery ExpandQuery(const query::Twig& twig, const cst::Cst& cst);

/// Renders an atom sequence for diagnostics and explain traces, in the
/// same form as Cst::DescribeSubpath ("book.author.Su"); atoms whose
/// tag never occurs in the data render as "?".
std::string RenderAtomSeq(const ExpandedQuery& eq,
                          const tree::LabelTable& labels, const AtomSeq& seq);

/// Renders an arbitrary atom set ("#3:author, #4:S") — used for
/// maximal-overlap conditioning sets, which need atom identity because
/// distinct query regions can share symbols.
std::string RenderAtomSet(const ExpandedQuery& eq,
                          const tree::LabelTable& labels,
                          const AtomSeq& atoms);

}  // namespace twig::core

#endif  // TWIG_CORE_EXPANDED_QUERY_H_
