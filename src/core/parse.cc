#include "core/parse.h"

#include <algorithm>

#include "util/small_vector.h"

namespace twig::core {

namespace {

using Cst = cst::CstView;

/// Longest CST match for path atoms [s, hi) of path `path_index`.
/// Intervals containing wildcards or interior descendant edges go
/// through the frontier walker; the representative node is the first
/// frontier node (deterministic — the frontier is sorted), good enough
/// for piece identity. The combiner re-resolves the full frontier when
/// it reads counts.
Cst::Match MatchAt(const ExpandedQuery& eq, const Cst& cst, int path_index,
                   int s, int hi) {
  const auto& path = eq.paths[path_index];
  Cst::Match match;
  if (NeedsFrontier(eq, path.data() + s, static_cast<size_t>(hi - s))) {
    FrontierMatch fm =
        ResolveAtomFrontier(eq, cst, path.data() + s,
                            static_cast<size_t>(hi - s));
    match.length = fm.matched;
    if (fm.matched > 0 && !fm.nodes.empty()) match.node = fm.nodes.front();
    return match;
  }
  cst::CstNodeId node = cst.root();
  for (int i = s; i < hi; ++i) {
    const suffix::Symbol symbol = eq.atoms[path[i]].symbol;
    if (symbol == Cst::kUnknownSymbol) break;
    cst::CstNodeId next = cst.Step(node, symbol);
    if (next == cst::kNoCstNode) break;
    node = next;
    match.node = node;
    match.length = static_cast<size_t>(i - s + 1);
  }
  return match;
}

ParsedPiece MakePiece(int path_index, int start, const Cst::Match& match) {
  ParsedPiece piece;
  piece.path = path_index;
  piece.start = start;
  piece.length = static_cast<int>(match.length);
  piece.cst_node = match.node;
  return piece;
}

ParsedPiece MakeMissingPiece(int path_index, int at) {
  ParsedPiece piece;
  piece.path = path_index;
  piece.start = at;
  piece.length = 1;
  piece.missing = true;
  return piece;
}

}  // namespace

std::vector<ParsedPiece> MaximalParseInterval(const ExpandedQuery& eq,
                                              const Cst& cst, int path_index,
                                              int lo, int hi) {
  std::vector<ParsedPiece> pieces;
  int covered = lo;
  int prev_start = lo - 1;
  while (covered < hi) {
    // Earliest start whose maximal match extends past the covered
    // region — the maximal-overlap choice.
    int chosen = -1;
    Cst::Match chosen_match;
    for (int s = prev_start + 1; s <= covered; ++s) {
      Cst::Match m = MatchAt(eq, cst, path_index, s, hi);
      if (s + static_cast<int>(m.length) > covered) {
        chosen = s;
        chosen_match = m;
        break;
      }
    }
    if (chosen < 0) {
      // Not even the single atom at `covered` matches the CST.
      pieces.push_back(MakeMissingPiece(path_index, covered));
      prev_start = covered;
      ++covered;
    } else {
      pieces.push_back(MakePiece(path_index, chosen, chosen_match));
      prev_start = chosen;
      covered = chosen + static_cast<int>(chosen_match.length);
    }
  }
  return pieces;
}

std::vector<ParsedPiece> GreedyParseInterval(const ExpandedQuery& eq,
                                             const Cst& cst, int path_index,
                                             int lo, int hi) {
  std::vector<ParsedPiece> pieces;
  int pos = lo;
  while (pos < hi) {
    Cst::Match m = MatchAt(eq, cst, path_index, pos, hi);
    if (m.length == 0) {
      pieces.push_back(MakeMissingPiece(path_index, pos));
      ++pos;
    } else {
      pieces.push_back(MakePiece(path_index, pos, m));
      pos += static_cast<int>(m.length);
    }
  }
  return pieces;
}

std::vector<ParsedPiece> ParseQuery(const ExpandedQuery& eq, const Cst& cst,
                                    ParseStrategy strategy) {
  std::vector<ParsedPiece> all;
  // (start atom, end atom) intervals already emitted. A handful of
  // pieces per query, so a flat sequence beats a hash set here.
  util::SmallVector<uint64_t, 16> seen;

  auto emit = [&](std::vector<ParsedPiece>&& pieces) {
    for (ParsedPiece& p : pieces) {
      const uint64_t key =
          (static_cast<uint64_t>(p.StartAtom(eq)) << 32) |
          static_cast<uint32_t>(p.EndAtom(eq));
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(key);
        all.push_back(p);
      }
    }
  };

  for (int pi = 0; pi < static_cast<int>(eq.paths.size()); ++pi) {
    const int len = static_cast<int>(eq.paths[pi].size());
    switch (strategy) {
      case ParseStrategy::kMaximal:
        emit(MaximalParseInterval(eq, cst, pi, 0, len));
        break;
      case ParseStrategy::kGreedy:
        emit(GreedyParseInterval(eq, cst, pi, 0, len));
        break;
      case ParseStrategy::kPiecewiseMaximal: {
        // Segment boundaries: root, branch atoms, and the leaf; each
        // boundary belongs to both adjacent segments.
        util::SmallVector<int, 8> bounds;
        bounds.push_back(0);
        for (int i = 1; i + 1 < len; ++i) {
          if (eq.IsBranch(eq.paths[pi][i])) bounds.push_back(i);
        }
        bounds.push_back(len - 1);
        if (len == 1) {
          emit(MaximalParseInterval(eq, cst, pi, 0, 1));
          break;
        }
        for (size_t b = 0; b + 1 < bounds.size(); ++b) {
          emit(MaximalParseInterval(eq, cst, pi, bounds[b], bounds[b + 1] + 1));
        }
        break;
      }
    }
  }
  return all;
}

}  // namespace twig::core
