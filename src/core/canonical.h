// Canonical query keys: a stable identity for "the same question".
//
// Syntactically different spellings of a twig query — extra
// whitespace, redundant escapes in value strings, `a(b)` vs `a.b` for
// single chains — parse to twigs that print identically under
// query::FormatTwig, because FormatTwig emits exactly one spelling per
// twig and ParseTwig(FormatTwig(t)) == t (round-trip stability is
// pinned by query_test's hostile-value fuzz). That printed form, plus
// the estimation algorithm and count semantics (which change the
// answer for the same twig), is the canonical identity of an estimate.
//
// CanonicalizeQuery returns the printed form together with a 64-bit
// fingerprint that is stable across processes and platforms (FNV/
// SplitMix over bytes — no pointer or locale dependence), so it can
// key caches, dedupe logs, or label persisted results. The fingerprint
// alone is not proof of equality; exact callers (the serving layer's
// result cache) compare `text` on fingerprint collisions.

#ifndef TWIG_CORE_CANONICAL_H_
#define TWIG_CORE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "core/combine.h"
#include "core/estimator.h"
#include "query/twig.h"

namespace twig::core {

/// A query's canonical identity: the one spelling FormatTwig emits,
/// and a stable hash over (text, algorithm, semantics).
struct CanonicalQueryKey {
  std::string text;
  uint64_t fingerprint = 0;
};

/// Canonicalizes `twig` for `(algorithm, semantics)`. Twigs that are
/// structurally equal (query::TwigEquals) yield identical keys; twigs
/// that differ yield different `text` (and, except for 64-bit
/// collisions, different fingerprints).
CanonicalQueryKey CanonicalizeQuery(const query::Twig& twig,
                                    Algorithm algorithm,
                                    CountSemantics semantics);

/// The fingerprint CanonicalizeQuery would assign to an
/// already-printed canonical `text` (no re-parse; callers holding the
/// printed form can fingerprint it directly).
uint64_t CanonicalQueryFingerprint(std::string_view canonical_text,
                                   Algorithm algorithm,
                                   CountSemantics semantics);

}  // namespace twig::core

#endif  // TWIG_CORE_CANONICAL_H_
