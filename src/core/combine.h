// Count estimation for pieces, and maximal-overlap combination
// (Sections 3.6, 3.7, 5).
//
// PieceCount reads a single subpath's count from the CST, or estimates
// a twiglet's count by k-way set-hash intersection of its subpaths'
// signatures; in occurrence semantics the presence estimate is scaled
// by the per-subpath occurrence/presence ratios (the Section 5
// uniformity assumption).
//
// MoCombine implements MO conditioning: pieces are applied in
// increasing root-depth order; each multiplies the running estimate by
// Pr(piece) and divides by Pr(piece ∩ already-covered). Overlaps that
// are single subpaths are read from the CST (guaranteed present by
// pruning monotonicity); overlaps that are subtrees are themselves
// estimated via set hashing.

#ifndef TWIG_CORE_COMBINE_H_
#define TWIG_CORE_COMBINE_H_

#include <cstdint>
#include <vector>

#include "core/expanded_query.h"
#include "core/pieces.h"
#include "cst/cst.h"
#include "obs/trace.h"
#include "util/status.h"

namespace twig::core {

/// Which count a query asks for (Section 5): presence counts distinct
/// rooting nodes; occurrence counts all 1-1 mappings.
enum class CountSemantics {
  kPresence,
  kOccurrence,
};

/// Options shared by the combination strategies.
struct CombineOptions {
  CountSemantics semantics = CountSemantics::kOccurrence;
  /// Count charged to a single atom with no CST match (below the prune
  /// threshold, or absent from the data). 0 = auto: half the CST prune
  /// threshold, at least 0.5.
  double missing_count = 0;
  /// Extension beyond the paper: when a twiglet contains duplicate or
  /// prefix-nested subpaths (e.g. two author="..." branches), its
  /// occurrence scale uses falling factorials of the per-presence
  /// multiplicities instead of the plain Section 5 product, accounting
  /// for the 1-1 mapping's need for *distinct* sibling children.
  bool duplicate_aware_occurrence = true;
  /// Optional explain sink (not owned; not thread-safe — one per
  /// concurrent estimate). When null — the default — the hot path pays
  /// a pointer check only.
  obs::Trace* trace = nullptr;
};

/// The fallback count actually charged for `requested` missing_count
/// (<= 0 selects the automatic half-threshold default).
double ResolveMissingCount(const cst::CstView& cst, double requested);

/// One subpath resolved against the CST — possibly by aggregating over
/// a frontier of CST nodes (wildcard / descendant expansion).
struct SubpathLookup {
  /// True if the whole sequence resolved (counts below are valid).
  bool matched = false;
  /// Summed presence / occurrence counts over the frontier.
  double presence = 0;
  double occurrence = 0;
  /// The matching CST node when agg_nodes == 1 — signatures and
  /// subpath descriptions are only meaningful for a single node;
  /// kNoCstNode when the lookup aggregated several.
  cst::CstNodeId node = cst::kNoCstNode;
  /// Number of CST nodes aggregated (1 for plain lookups).
  uint32_t agg_nodes = 0;
};

/// Minimum matching signature components for a set-hash twiglet
/// estimate to be trusted; below this the twiglet degrades to pure-MO
/// conditioning (the intersection is under the signatures' resolution).
inline constexpr size_t kMinSignatureSupport = 2;

/// Estimates counts of pieces and combines them into query estimates.
class Combiner {
 public:
  Combiner(const ExpandedQuery& eq, const cst::CstView& cst,
           const CombineOptions& options);

  /// Flushes the query's CST-lookup / fallback tallies to the global
  /// obs::MetricsRegistry (one batched update per estimate).
  ~Combiner();

  Combiner(const Combiner&) = delete;
  Combiner& operator=(const Combiner&) = delete;

  /// Count estimate of one piece (under the configured semantics).
  double PieceCount(const EstimandPiece& piece) const;

  /// MO-conditioned combination: N * prod Pr(piece) / Pr(overlap).
  double MoCombine(std::vector<EstimandPiece> pieces) const;

  /// Independence combination (the Greedy baseline): N * prod Pr(piece).
  double IndependenceCombine(const std::vector<EstimandPiece>& pieces) const;

  /// Probability (count / N) of an arbitrary atom set: its connected
  /// components are estimated independently and multiplied.
  double AtomSetProb(const AtomSeq& atoms) const;

  /// OK unless a lookup blew the frontier aggregation budget
  /// (kMaxFrontierNodes / kMaxFrontierVisits). Sticky: once set, every
  /// estimate produced by this combiner is untrustworthy and callers
  /// must surface the error instead of the number (the no-silent-zero
  /// contract).
  const Status& status() const { return status_; }

 private:
  /// CST node for an explicit atom sequence, or kNoCstNode.
  cst::CstNodeId LookupAtoms(const AtomSeq& seq) const;

  /// Resolves a subpath, dispatching between the plain walk and
  /// frontier aggregation; sets status() on budget exhaustion.
  SubpathLookup LookupSubpath(const AtomSeq& seq) const;

  /// The requested-semantics count of a resolved lookup.
  double CountOfLookup(const SubpathLookup& lookup) const {
    return options_.semantics == CountSemantics::kOccurrence
               ? lookup.occurrence
               : lookup.presence;
  }

  /// Records the first budget failure (later ones keep the original).
  void Fail(Status failure) const {
    if (status_.ok()) status_ = std::move(failure);
  }

  /// Count of a root-anchored group of subpaths (1 => CST read, >= 2 =>
  /// set-hash twiglet estimate).
  double SubpathsCount(const SubpathList& subpaths) const;

  /// Pure-MO conditioning estimate of a twiglet, used when its
  /// intersection is below the signatures' resolution.
  double TwigletMoFallback(const SubpathList& subpaths) const;

  /// Occurrences-per-presence scale of a twiglet (Section 5), with the
  /// optional duplicate-aware falling-factorial correction.
  double OccurrenceScale(const SubpathList& subpaths,
                         const util::SmallVector<double, 4>& multiplicities)
      const;

  double CountOf(cst::CstNodeId node) const {
    return options_.semantics == CountSemantics::kOccurrence
               ? cst_.OccurrenceCount(node)
               : cst_.PresenceCount(node);
  }

  /// Records one resolved subpath under the piece being traced (no-op
  /// unless a trace is attached and a piece is in flight).
  void TraceSubpath(const AtomSeq& seq, const SubpathLookup& lookup,
                    double count_used) const;

  const ExpandedQuery& eq_;
  const cst::CstView& cst_;
  CombineOptions options_;
  double n_;  // data node count (the paper's normalizer)
  /// First frontier-budget failure, if any (see status()).
  mutable Status status_;

  // -- Observability (write-only on the estimation path) ------------------
  /// Piece currently being estimated, when tracing; subpath and
  /// intersection records append here.
  mutable obs::PieceTrace* current_piece_ = nullptr;
  /// MoCombine nesting depth: combination terms are traced only at
  /// depth 1 (twiglet pure-MO fallbacks recurse into MoCombine).
  mutable int combine_depth_ = 0;
  // Per-query tallies, flushed once by the destructor.
  mutable uint32_t tally_lookups_ = 0;
  mutable uint32_t tally_hits_ = 0;
  mutable uint32_t tally_misses_ = 0;
  mutable uint32_t tally_fallbacks_ = 0;
};

}  // namespace twig::core

#endif  // TWIG_CORE_COMBINE_H_
