#include "core/canonical.h"

#include "util/hash.h"

namespace twig::core {

uint64_t CanonicalQueryFingerprint(std::string_view canonical_text,
                                   Algorithm algorithm,
                                   CountSemantics semantics) {
  // Seed the byte hash with the (algorithm, semantics) pair so the
  // same twig under MSH/occurrence and MO/presence cannot collide by
  // construction. Both enums are small and stable.
  const uint64_t seed =
      (static_cast<uint64_t>(algorithm) << 8) |
      static_cast<uint64_t>(semantics);
  return HashBytes(canonical_text, Mix64(seed + 0x7477696763616368ULL));
}

CanonicalQueryKey CanonicalizeQuery(const query::Twig& twig,
                                    Algorithm algorithm,
                                    CountSemantics semantics) {
  CanonicalQueryKey key;
  key.text = query::FormatTwig(twig);
  key.fingerprint = CanonicalQueryFingerprint(key.text, algorithm, semantics);
  return key;
}

}  // namespace twig::core
